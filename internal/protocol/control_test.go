package protocol

import (
	"testing"

	"repro/internal/flit"
	"repro/internal/network"
	"repro/internal/route"
	"repro/internal/router"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// buildReservedNet returns a 4x4 folded torus configured with a reserved
// VC and reservation tables of the given period.
func buildReservedNet(t *testing.T, period int, seed int64) (*network.Network, topology.Topology) {
	t.Helper()
	topo, err := topology.NewFoldedTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	rc := router.DefaultConfig(0)
	rc.ReservedVC = 7
	rc.ResPeriod = period
	n, err := network.New(network.Config{Topo: topo, Router: rc, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return n, topo
}

func TestConfiguratorProgramsFlowInBand(t *testing.T) {
	// §2.6 configuration done entirely over the network: a management tile
	// programs the reservation registers of every hop via control packets,
	// then the stream runs with zero jitter.
	const (
		src, dst, mgmt = 0, 10, 15
		period, flow   = 8, 3
	)
	n, topo := buildReservedNet(t, period, 31)

	cfg, err := NewConfigurator(topo, src, dst, flow, 0, flit.MaskFor(0))
	if err != nil {
		t.Fatal(err)
	}
	n.AttachClient(mgmt, cfg)
	// Every tile runs its register agent; the flow's source tile also runs
	// the stream source, held off with a far-future phase until the
	// reservations exist.
	stream := &traffic.StreamSource{
		Tile: src, Dst: dst, Period: period, Flow: flow, Reserved: true,
		Phase: 1 << 40,
	}
	for tile := 0; tile < topo.NumTiles(); tile++ {
		if tile == mgmt {
			continue
		}
		agent := &RegisterAgent{Router: n.Router(tile), Mask: flit.MaskFor(1)}
		if tile == src {
			n.AttachClient(tile, AgentWith(agent, stream))
		} else {
			n.AttachClient(tile, agent)
		}
	}
	if !n.Kernel().RunUntil(func() bool { return cfg.Done }, 5000) {
		t.Fatalf("configuration never completed (%d/%d hops)", cfg.next, cfg.Hops())
	}
	if cfg.Failed {
		t.Fatal("configuration failed")
	}
	hops, _ := topology.PathMetrics(topo, src, dst)
	if cfg.Hops() != hops {
		t.Fatalf("configured %d hops, route has %d", cfg.Hops(), hops)
	}

	// Start the stream on a phase-aligned cycle and verify zero jitter.
	start := ((n.Kernel().Now() / int64(period)) + 1) * int64(period)
	stream.Phase = start
	stream.StopAt = start + 800
	n.Run(stream.StopAt + 200 - n.Kernel().Now())
	rec := n.Recorder()
	lat := rec.FlowLatency(flow)
	if lat == nil || lat.Count() < 50 {
		t.Fatalf("stream delivered too little after in-band setup: %v", lat)
	}
	if j := rec.FlowJitter(flow); j != 0 {
		t.Fatalf("jitter = %d after in-band programming", j)
	}
	if got := lat.Max(); got != int64(2*hops+2) {
		t.Fatalf("reserved latency %d, want %d", got, 2*hops+2)
	}
}

func TestConfiguratorConflictReported(t *testing.T) {
	// Booking two flows into the same slots must fail at the agent and be
	// reported in the ack.
	const period = 8
	n, topo := buildReservedNet(t, period, 33)
	a, err := NewConfigurator(topo, 0, 10, 1, 0, flit.MaskFor(0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewConfigurator(topo, 0, 10, 2, 0, flit.MaskFor(0)) // same route, same phase
	if err != nil {
		t.Fatal(err)
	}
	for tile := 0; tile < topo.NumTiles(); tile++ {
		if tile == 15 || tile == 14 {
			continue
		}
		n.AttachClient(tile, &RegisterAgent{Router: n.Router(tile), Mask: flit.MaskFor(1)})
	}
	n.AttachClient(15, a)
	n.AttachClient(14, b)
	if !n.Kernel().RunUntil(func() bool { return a.Done && b.Done }, 10000) {
		t.Fatal("configuration did not settle")
	}
	if a.Failed && b.Failed {
		t.Fatal("both flows failed; exactly one should win the slots")
	}
	if !a.Failed && !b.Failed {
		t.Fatal("conflicting reservations both succeeded")
	}
}

func TestConfiguratorValidation(t *testing.T) {
	topo, _ := topology.NewFoldedTorus(4, 4)
	if _, err := NewConfigurator(topo, 0, 10, 0, 0, flit.MaskFor(0)); err == nil {
		t.Error("flow 0 accepted")
	}
	if _, err := NewConfigurator(topo, 3, 3, 1, 0, flit.MaskFor(0)); err == nil {
		t.Error("loopback flow accepted")
	}
}

func TestRegisterAgentRejectsBadDir(t *testing.T) {
	n, _ := buildReservedNet(t, 8, 35)
	agent := &RegisterAgent{Router: n.Router(5), Mask: flit.MaskFor(1)}
	n.AttachClient(5, agent)
	var status []byte
	n.AttachClient(0, network.ClientFunc(func(now int64, p *network.Port) {
		for _, d := range p.Deliveries() {
			if len(d.Payload) == ctlAckLen && d.Payload[0] == ctlReserveAck {
				status = append(status, d.Payload[3])
			}
		}
	}))
	// dir byte 4 (Local) is not a reservable output.
	bad := encodeReserve(1, 4, 2, 1)
	if _, err := n.Port(0).Send(5, bad, flit.MaskFor(0), 0); err != nil {
		t.Fatal(err)
	}
	n.Run(60)
	if len(status) != 1 || status[0] != ctlFailed {
		t.Fatalf("bad direction ack = %v, want [failed]", status)
	}
	if agent.Rejected != 1 {
		t.Fatalf("rejected = %d", agent.Rejected)
	}
}

func TestRegisterQueryReadback(t *testing.T) {
	// §2.1's registers are readable as well: a management tile can audit a
	// router's reservation table over the network.
	n, topo := buildReservedNet(t, 8, 37)
	if _, err := n.ReserveFlow(0, 10, 1, 0); err != nil {
		t.Fatal(err)
	}
	agent := &RegisterAgent{Router: n.Router(0), Mask: flit.MaskFor(1)}
	n.AttachClient(0, agent)
	var got []byte
	n.AttachClient(15, network.ClientFunc(func(now int64, p *network.Port) {
		for _, d := range p.Deliveries() {
			if len(d.Payload) > 0 && d.Payload[0] == ctlQueryAck {
				got = append([]byte(nil), d.Payload...)
			}
		}
	}))
	// Tile 0's east output carries the flow's first hop (0 -> 10 goes E
	// then E/N per DOR; the first direction from tile 0 to x=2 is E).
	if _, err := n.Port(15).Send(0, QueryRegisters(7, route.East), flit.MaskFor(0), 0); err != nil {
		t.Fatal(err)
	}
	n.Run(60)
	if got == nil {
		t.Fatal("no query reply")
	}
	seq, period, reserved, ok := DecodeQueryReply(got)
	if !ok || seq != 7 {
		t.Fatalf("reply decode: seq=%d ok=%v", seq, ok)
	}
	if period != 8 {
		t.Fatalf("period = %d", period)
	}
	if reserved != 1 {
		t.Fatalf("reserved slots = %d, want 1", reserved)
	}
	_ = topo
}

func TestRegisterQueryBadDir(t *testing.T) {
	n, _ := buildReservedNet(t, 8, 39)
	agent := &RegisterAgent{Router: n.Router(3), Mask: flit.MaskFor(1)}
	n.AttachClient(3, agent)
	var failed bool
	n.AttachClient(0, network.ClientFunc(func(now int64, p *network.Port) {
		for _, d := range p.Deliveries() {
			if len(d.Payload) >= 4 && d.Payload[0] == ctlQueryAck && d.Payload[3] == ctlFailed {
				failed = true
			}
		}
	}))
	if _, err := n.Port(0).Send(3, QueryRegisters(1, route.Local), flit.MaskFor(0), 0); err != nil {
		t.Fatal(err)
	}
	n.Run(60)
	if !failed {
		t.Fatal("bad-direction query not rejected")
	}
}
