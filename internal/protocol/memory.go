package protocol

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/flit"
	"repro/internal/network"
	"repro/internal/stats"
)

// The memory read/write service of §2.2 ("this local logic could present a
// memory read/write service"): a Memory client serves a word-addressed RAM
// at its tile; Processor clients issue read and write requests over the
// network and match replies by transaction id.

// Memory op codes.
const (
	opRead  = 0x01
	opWrite = 0x02
	opReply = 0x80
)

// reqHeader is [op(1) id(8) addr(4) len(2)] followed by write data.
const reqHeader = 1 + 8 + 4 + 2

func encodeReq(op byte, id uint64, addr uint32, data []byte, length int) []byte {
	p := make([]byte, reqHeader+len(data))
	p[0] = op
	binary.LittleEndian.PutUint64(p[1:], id)
	binary.LittleEndian.PutUint32(p[9:], addr)
	binary.LittleEndian.PutUint16(p[13:], uint16(length))
	copy(p[reqHeader:], data)
	return p
}

func decodeReq(p []byte) (op byte, id uint64, addr uint32, length int, data []byte, err error) {
	if len(p) < reqHeader {
		return 0, 0, 0, 0, nil, fmt.Errorf("protocol: short memory message (%d bytes)", len(p))
	}
	op = p[0]
	id = binary.LittleEndian.Uint64(p[1:])
	addr = binary.LittleEndian.Uint32(p[9:])
	length = int(binary.LittleEndian.Uint16(p[13:]))
	data = p[reqHeader:]
	return op, id, addr, length, data, nil
}

// Memory is a RAM subsystem client: it answers read requests with data and
// write requests with an acknowledgement.
type Memory struct {
	Mask  flit.VCMask
	Class int

	mem map[uint32]byte

	Reads, Writes int64
	Errors        int64
}

// NewMemory returns an empty RAM client.
func NewMemory(mask flit.VCMask) *Memory {
	return &Memory{Mask: mask, mem: make(map[uint32]byte)}
}

// Peek reads a byte directly, for tests.
func (m *Memory) Peek(addr uint32) byte { return m.mem[addr] }

// Tick implements network.Client.
func (m *Memory) Tick(now int64, p *network.Port) {
	for _, d := range p.Deliveries() {
		op, id, addr, length, data, err := decodeReq(d.Payload)
		if err != nil {
			m.Errors++
			continue
		}
		switch op {
		case opRead:
			m.Reads++
			out := make([]byte, length)
			for i := range out {
				out[i] = m.mem[addr+uint32(i)]
			}
			_, _ = p.Send(d.Src, encodeReq(opRead|opReply, id, addr, out, length), m.Mask, m.Class)
		case opWrite:
			m.Writes++
			for i, b := range data {
				m.mem[addr+uint32(i)] = b
			}
			_, _ = p.Send(d.Src, encodeReq(opWrite|opReply, id, addr, nil, len(data)), m.Mask, m.Class)
		default:
			m.Errors++
		}
	}
}

// Processor issues a random read/write workload against one Memory tile,
// keeping up to MaxOutstanding transactions in flight — the "dynamic
// traffic, such as processor memory references, that cannot be predicted
// before run-time" of §2.6.
type Processor struct {
	MemTile        int
	Mask           flit.VCMask
	Class          int
	MaxOutstanding int
	AddrSpace      uint32
	MaxBytes       int
	StopAt         int64

	rng         *rand.Rand
	nextID      uint64
	outstanding map[uint64]pendingTxn
	shadow      map[uint32]byte

	RTT               *stats.Hist
	Issued, Completed int64
	Mismatches        int64
}

type pendingTxn struct {
	issued int64
	op     byte
	addr   uint32
	length int
	// check marks reads whose range had no write in flight at issue time;
	// only those are compared against the shadow copy, because the network
	// may legally reorder requests on different virtual channels.
	check bool
}

// NewProcessor returns a processor client.
func NewProcessor(memTile int, mask flit.VCMask, seed int64) *Processor {
	return &Processor{
		MemTile:        memTile,
		Mask:           mask,
		MaxOutstanding: 4,
		AddrSpace:      1 << 16,
		MaxBytes:       64,
		rng:            rand.New(rand.NewSource(seed)),
		outstanding:    make(map[uint64]pendingTxn),
		shadow:         make(map[uint32]byte),
		RTT:            stats.NewHist(2048),
	}
}

// Tick implements network.Client.
func (c *Processor) Tick(now int64, p *network.Port) {
	for _, d := range p.Deliveries() {
		op, id, addr, _, data, err := decodeReq(d.Payload)
		if err != nil || op&opReply == 0 {
			continue
		}
		txn, ok := c.outstanding[id]
		if !ok {
			continue
		}
		delete(c.outstanding, id)
		c.Completed++
		c.RTT.Add(now - txn.issued)
		if txn.op == opRead && txn.check {
			// Read-your-writes consistency against the shadow copy.
			for i := 0; i < txn.length && i < len(data); i++ {
				if data[i] != c.shadow[addr+uint32(i)] {
					c.Mismatches++
					break
				}
			}
		}
	}
	if c.StopAt > 0 && now >= c.StopAt {
		return
	}
	for len(c.outstanding) < c.MaxOutstanding {
		id := c.nextID
		c.nextID++
		addr := uint32(c.rng.Intn(int(c.AddrSpace)))
		length := 1 + c.rng.Intn(c.MaxBytes)
		var payload []byte
		var op byte
		check := false
		if c.rng.Intn(2) == 0 {
			op = opRead
			payload = encodeReq(opRead, id, addr, nil, length)
			check = !c.overlapsOutstandingWrite(addr, length)
		} else {
			op = opWrite
			if c.overlapsOutstandingWrite(addr, length) {
				// Two in-flight writes to the same bytes could be applied
				// in either order; hold this one back a cycle so the
				// shadow copy stays authoritative.
				c.nextID--
				return
			}
			data := make([]byte, length)
			c.rng.Read(data)
			for i, b := range data {
				c.shadow[addr+uint32(i)] = b
			}
			payload = encodeReq(opWrite, id, addr, data, length)
			// A write racing an in-flight read (or write) to the same
			// range makes the outcome order-dependent: stop checking the
			// read, and rely on the memory applying writes in arrival
			// order for the rest.
			for tid, txn := range c.outstanding {
				if txn.op == opRead && txn.check &&
					addr < txn.addr+uint32(txn.length) && txn.addr < addr+uint32(length) {
					txn.check = false
					c.outstanding[tid] = txn
				}
			}
		}
		if _, err := p.Send(c.MemTile, payload, c.Mask, c.Class); err != nil {
			return
		}
		c.outstanding[id] = pendingTxn{issued: now, op: op, addr: addr, length: length, check: check}
		c.Issued++
	}
}

func (c *Processor) overlapsOutstandingWrite(addr uint32, length int) bool {
	for _, txn := range c.outstanding {
		if txn.op != opWrite {
			continue
		}
		if addr < txn.addr+uint32(txn.length) && txn.addr < addr+uint32(length) {
			return true
		}
	}
	return false
}

// Outstanding reports in-flight transactions, for drain checks.
func (c *Processor) Outstanding() int { return len(c.outstanding) }
