package protocol

import (
	"testing"

	"repro/internal/flit"
	"repro/internal/network"
	"repro/internal/telemetry"
)

// corruptAckReceiver acknowledges every data message, but mangles the
// checksum of the FIRST ack per sequence number — so the sender's initial
// transmission is always answered with a corrupted ack and only the
// retransmission gets a clean one.
type corruptAckReceiver struct {
	mask flit.VCMask
	seen map[uint64]int
}

func (r *corruptAckReceiver) Tick(now int64, p *network.Port) {
	for _, d := range p.Deliveries() {
		seq, _, ok := decodeRetry(d.Payload, retryData)
		if !ok {
			continue
		}
		r.seen[seq]++
		ack := encodeRetry(retryAck, seq, nil)
		if r.seen[seq] == 1 {
			ack[9] ^= 0xFF // flip a checksum byte: end-to-end check must reject
		}
		_, _ = p.Send(d.Src, ack, r.mask, 0)
	}
}

// TestCorruptedAckTriggersRetransmit drives every message through a
// corrupted first ack: the sender must count and discard the bad acks,
// time out, retransmit, and finish with a clean window — corrupted acks
// cost a round trip, never a poisoned sequence number.
func TestCorruptedAckTriggersRetransmit(t *testing.T) {
	n := buildNet(t, 9, nil)
	msgs := [][]byte{[]byte("aa"), []byte("bbb"), []byte("cccc"), []byte("d")}
	snd := NewReliableSender(5, msgs, flit.MaskFor(0))
	snd.Timeout = 64 // keep the test short; backoff still doubles from here
	rcv := &corruptAckReceiver{mask: flit.MaskFor(1), seen: make(map[uint64]int)}
	n.AttachClient(0, snd)
	n.AttachClient(5, rcv)
	if !n.Kernel().RunUntil(func() bool { return snd.Done() }, 100000) {
		t.Fatalf("sender never finished: acked %d, corrupt acks %d, retransmits %d",
			snd.AckedCount, snd.CorruptAcks, snd.Retransmits)
	}

	// Every message was eventually acknowledged; none abandoned: the
	// window was not poisoned by the corrupted acks.
	if snd.AckedCount != int64(len(msgs)) || snd.FailedCount != 0 {
		t.Fatalf("acked %d failed %d, want %d/0", snd.AckedCount, snd.FailedCount, len(msgs))
	}
	if err := snd.Err(); err != nil {
		t.Fatalf("sender error: %v", err)
	}
	// Each message's first ack was corrupted and discarded, forcing at
	// least one timeout-driven retransmission per message.
	if snd.CorruptAcks < int64(len(msgs)) {
		t.Fatalf("CorruptAcks = %d, want >= %d (one bad ack per message)", snd.CorruptAcks, len(msgs))
	}
	if snd.Retransmits < int64(len(msgs)) || snd.Timeouts < snd.Retransmits {
		t.Fatalf("Retransmits = %d, Timeouts = %d, want >= %d retransmits and Timeouts >= Retransmits",
			snd.Retransmits, snd.Timeouts, len(msgs))
	}
	// The receiver saw each message at least twice (original + resend).
	for seq := range msgs {
		if rcv.seen[uint64(seq)] < 2 {
			t.Fatalf("message %d seen %d times, want >= 2", seq, rcv.seen[uint64(seq)])
		}
	}
}

// TestRetryCountersPublish checks the probe surfaces the protocol-level
// robustness counters, and only when they are nonzero does the metrics
// CSV grow a protocol section.
func TestRetryCountersPublish(t *testing.T) {
	probe := telemetry.New(telemetry.Config{})
	snd := &ReliableSender{Retransmits: 3, Timeouts: 5, CorruptAcks: 2}
	rcv := &ReliableReceiver{Corrupted: 7}
	snd.Publish(probe)
	rcv.Publish(probe)
	if probe.RetryRetransmits != 3 || probe.RetryTimeouts != 5 || probe.RetryCorrupt != 9 {
		t.Fatalf("probe counters = %d/%d/%d, want 3/5/9",
			probe.RetryRetransmits, probe.RetryTimeouts, probe.RetryCorrupt)
	}
}
