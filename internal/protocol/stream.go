package protocol

import (
	"encoding/binary"

	"repro/internal/flit"
	"repro/internal/network"
	"repro/internal/stats"
)

// The flow-controlled data stream of §2.2: the sender may only have Window
// unconsumed chunks outstanding; the receiver returns credit messages as
// its client logic consumes data. This is end-to-end (client-level) flow
// control, independent of the per-link credits inside the network.

const (
	streamData   = 0x10
	streamCredit = 0x11
)

// StreamSender pushes TotalChunks chunks of ChunkBytes each to Dst, never
// exceeding the receiver's advertised window.
type StreamSender struct {
	Dst         int
	Window      int
	ChunkBytes  int
	TotalChunks int
	Mask        flit.VCMask
	Class       int

	nextSeq  uint64
	credits  int
	started  bool
	SentData int64
}

// NewStreamSender returns a sender; the initial window is granted locally
// (the receiver advertises the same value).
func NewStreamSender(dst, window, chunkBytes, total int, mask flit.VCMask) *StreamSender {
	return &StreamSender{Dst: dst, Window: window, ChunkBytes: chunkBytes, TotalChunks: total, Mask: mask, credits: window}
}

// Done reports whether every chunk has been sent.
func (s *StreamSender) Done() bool { return int(s.nextSeq) >= s.TotalChunks }

// Tick implements network.Client.
func (s *StreamSender) Tick(now int64, p *network.Port) {
	for _, d := range p.Deliveries() {
		if len(d.Payload) >= 9 && d.Payload[0] == streamCredit {
			s.credits += int(binary.LittleEndian.Uint64(d.Payload[1:]))
		}
	}
	for !s.Done() && s.credits > 0 {
		chunk := make([]byte, 9+s.ChunkBytes)
		chunk[0] = streamData
		binary.LittleEndian.PutUint64(chunk[1:], s.nextSeq)
		for i := 0; i < s.ChunkBytes; i++ {
			chunk[9+i] = byte(s.nextSeq) ^ byte(i)
		}
		if _, err := p.Send(s.Dst, chunk, s.Mask, s.Class); err != nil {
			return
		}
		s.credits--
		s.nextSeq++
		s.SentData++
	}
}

// StreamReceiver consumes at most DrainPerTick chunks per cycle (modelling
// a rate-limited consumer) and returns credits for what it consumed.
// Chunks may arrive out of order across VCs; the receiver reorders them.
type StreamReceiver struct {
	Window       int
	DrainPerTick int
	Mask         flit.VCMask
	Class        int

	pending  map[uint64][]byte
	nextSeq  uint64
	src      int
	srcKnown bool
	Consumed int64
	// MaxQueued tracks the largest number of undelivered chunks held: it
	// must never exceed Window if the protocol is correct.
	MaxQueued int

	OccupancyHist *stats.Hist
	Corrupt       int64
}

// NewStreamReceiver returns a receiver.
func NewStreamReceiver(window, drainPerTick int, mask flit.VCMask) *StreamReceiver {
	return &StreamReceiver{
		Window: window, DrainPerTick: drainPerTick, Mask: mask,
		pending:       make(map[uint64][]byte),
		OccupancyHist: stats.NewHist(256),
	}
}

// Tick implements network.Client.
func (r *StreamReceiver) Tick(now int64, p *network.Port) {
	for _, d := range p.Deliveries() {
		if len(d.Payload) < 9 || d.Payload[0] != streamData {
			continue
		}
		seq := binary.LittleEndian.Uint64(d.Payload[1:])
		// Copy: the payload buffer is recycled by the port after the
		// next Deliveries call, and pending entries outlive that.
		r.pending[seq] = append([]byte(nil), d.Payload[9:]...)
		r.src, r.srcKnown = d.Src, true
	}
	if len(r.pending) > r.MaxQueued {
		r.MaxQueued = len(r.pending)
	}
	r.OccupancyHist.Add(int64(len(r.pending)))
	consumed := 0
	for consumed < r.DrainPerTick {
		chunk, ok := r.pending[r.nextSeq]
		if !ok {
			break
		}
		for i, b := range chunk {
			if b != byte(r.nextSeq)^byte(i) {
				r.Corrupt++
				break
			}
		}
		delete(r.pending, r.nextSeq)
		r.nextSeq++
		r.Consumed++
		consumed++
	}
	if consumed > 0 {
		credit := make([]byte, 9)
		credit[0] = streamCredit
		binary.LittleEndian.PutUint64(credit[1:], uint64(consumed))
		// Credits go back to the stream source tile, learned from the
		// first data delivery.
		if r.srcKnown {
			_, _ = p.Send(r.src, credit, r.Mask, r.Class)
		}
	}
}
