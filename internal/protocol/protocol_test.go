package protocol

import (
	"bytes"
	"testing"

	"repro/internal/flit"
	"repro/internal/network"
	"repro/internal/router"
	"repro/internal/topology"
)

func buildNet(t *testing.T, seed int64, mut func(*network.Config)) *network.Network {
	t.Helper()
	topo, err := topology.NewFoldedTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := network.Config{Topo: topo, Router: router.DefaultConfig(0), Seed: seed}
	if mut != nil {
		mut(&cfg)
	}
	n, err := network.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestLogicalWireDeliversState(t *testing.T) {
	// §2.2: toggling the bundle propagates the new state to the far tile.
	n := buildNet(t, 1, nil)
	sender := &WireSender{Bundle: WireBundle{ID: 42}, Dst: 9, Mask: flit.MaskFor(0)}
	recv := NewWireReceiver()
	n.AttachClient(0, sender)
	n.AttachClient(9, recv)
	sender.Set(0xA5, 0)
	n.Run(30)
	got, ok := recv.Output(42)
	if !ok || got != 0xA5 {
		t.Fatalf("wire state = %02x,%v want a5", got, ok)
	}
	// Toggle again; the update must follow.
	sender.Set(0x3C, n.Kernel().Now())
	n.Run(30)
	if got, _ := recv.Output(42); got != 0x3C {
		t.Fatalf("second state = %02x", got)
	}
	if recv.Updates != 2 {
		t.Fatalf("updates = %d", recv.Updates)
	}
	if sender.State() != 0x3C {
		t.Fatalf("sender state = %02x", sender.State())
	}
}

func TestLogicalWireRedundantSetSuppressed(t *testing.T) {
	n := buildNet(t, 2, nil)
	sender := &WireSender{Bundle: WireBundle{ID: 1}, Dst: 3, Mask: flit.MaskFor(0)}
	recv := NewWireReceiver()
	n.AttachClient(0, sender)
	n.AttachClient(3, recv)
	sender.Set(0x11, 0)
	n.Run(30)
	sender.Set(0x11, 30) // no change: no packet
	n.Run(30)
	if recv.Updates != 1 {
		t.Fatalf("redundant set generated traffic: %d updates", recv.Updates)
	}
}

func TestLogicalWireLatencyCompetitive(t *testing.T) {
	// §2.2/§4.1: logical-wire latency over the network is a small fixed
	// pipeline delay — a handful of cycles across the chip, unloaded.
	n := buildNet(t, 3, nil)
	sender := &WireSender{Bundle: WireBundle{ID: 7}, Dst: 10, Mask: flit.MaskFor(0)}
	recv := NewWireReceiver()
	n.AttachClient(0, sender)
	n.AttachClient(10, recv)
	for i := 0; i < 20; i++ {
		sender.Set(byte(i+1), n.Kernel().Now())
		n.Run(25)
	}
	if recv.Latency.Count() < 20 {
		t.Fatalf("updates = %d", recv.Latency.Count())
	}
	hops, _ := topology.PathMetrics(n.Topology(), 0, 10)
	// The sender's Tick injects on the change cycle itself, so the
	// end-to-end wire delay is exactly the network pipeline, 2H+2.
	want := int64(2*hops + 2)
	if got := recv.Latency.Max(); got != want {
		t.Fatalf("wire latency = %d, want %d", got, want)
	}
}

func TestMemoryReadWrite(t *testing.T) {
	n := buildNet(t, 4, nil)
	mem := NewMemory(flit.VCMask(0x0F))
	cpu := NewProcessor(12, flit.VCMask(0x0F), 99)
	cpu.StopAt = 2000
	n.AttachClient(12, mem)
	n.AttachClient(0, cpu)
	n.Run(4000)
	if cpu.Completed < 100 {
		t.Fatalf("completed only %d transactions", cpu.Completed)
	}
	if cpu.Mismatches != 0 {
		t.Fatalf("%d read-your-writes violations", cpu.Mismatches)
	}
	if cpu.Outstanding() != 0 {
		t.Fatalf("%d transactions stuck", cpu.Outstanding())
	}
	if mem.Errors != 0 {
		t.Fatalf("memory decode errors: %d", mem.Errors)
	}
	if mem.Reads == 0 || mem.Writes == 0 {
		t.Fatalf("workload not mixed: %d reads %d writes", mem.Reads, mem.Writes)
	}
	if cpu.RTT.Count() == 0 || cpu.RTT.Mean() < 8 {
		t.Fatalf("implausible RTT: %v", cpu.RTT)
	}
}

func TestMemoryMultipleProcessors(t *testing.T) {
	n := buildNet(t, 5, nil)
	mem := NewMemory(flit.VCMask(0xF0))
	n.AttachClient(5, mem)
	cpus := []*Processor{}
	for _, tile := range []int{0, 3, 12, 15} {
		cpu := NewProcessor(5, flit.VCMask(0x0F), int64(tile)*7+1)
		cpu.StopAt = 1500
		// Disjoint address spaces per CPU so the shadow copies stay
		// authoritative.
		cpu.AddrSpace = 1 << 12
		n.AttachClient(tile, cpu)
		cpus = append(cpus, cpu)
	}
	// Give each CPU a distinct region by offsetting through AddrSpace.
	n.Run(4000)
	for i, cpu := range cpus {
		if cpu.Completed == 0 {
			t.Fatalf("cpu %d completed nothing", i)
		}
		if cpu.Outstanding() != 0 {
			t.Fatalf("cpu %d has stuck transactions", i)
		}
	}
}

func TestStreamFlowControl(t *testing.T) {
	// §2.2: a flow-controlled stream never overruns the receiver's window,
	// even when the consumer is slower than the producer.
	n := buildNet(t, 6, nil)
	const window, total = 8, 200
	snd := NewStreamSender(11, window, 32, total, flit.VCMask(0x0F))
	rcv := NewStreamReceiver(window, 1, flit.VCMask(0xF0))
	n.AttachClient(0, snd)
	n.AttachClient(11, rcv)
	n.Run(8000)
	if rcv.Consumed != total {
		t.Fatalf("consumed %d of %d", rcv.Consumed, total)
	}
	if rcv.Corrupt != 0 {
		t.Fatalf("corrupt chunks: %d", rcv.Corrupt)
	}
	if rcv.MaxQueued > window {
		t.Fatalf("receiver queue reached %d, window %d (flow control broken)", rcv.MaxQueued, window)
	}
	if !snd.Done() {
		t.Fatal("sender not done")
	}
}

func TestReliableDeliveryOverCorruptingNetwork(t *testing.T) {
	// §2.5: end-to-end checking with retry masks transient link faults.
	n := buildNet(t, 7, func(c *network.Config) {
		c.PhysWires = true
		c.TransientProb = 0.02 // a flipped bit every ~50 link traversals
	})
	msgs := make([][]byte, 60)
	for i := range msgs {
		msgs[i] = bytes.Repeat([]byte{byte(i)}, 24+i%7)
	}
	snd := NewReliableSender(13, msgs, flit.MaskFor(0))
	rcv := NewReliableReceiver(flit.MaskFor(1))
	n.AttachClient(2, snd)
	n.AttachClient(13, rcv)
	ok := n.Kernel().RunUntil(func() bool { return snd.Done() }, 200000)
	if !ok {
		t.Fatalf("sender never finished: acked %d, retransmits %d, corrupted %d",
			snd.AckedCount, snd.Retransmits, rcv.Corrupted)
	}
	if len(rcv.Received) != len(msgs) {
		t.Fatalf("received %d of %d", len(rcv.Received), len(msgs))
	}
	for i, m := range msgs {
		if !bytes.Equal(rcv.Received[i], m) {
			t.Fatalf("message %d corrupted end-to-end", i)
		}
	}
	if rcv.Corrupted == 0 {
		t.Fatal("no corruption observed; the fault injection is not exercising the retry path")
	}
}

func TestReliableDeliveryCleanNetworkNoRetransmits(t *testing.T) {
	n := buildNet(t, 8, nil)
	msgs := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	snd := NewReliableSender(1, msgs, flit.MaskFor(0))
	rcv := NewReliableReceiver(flit.MaskFor(1))
	n.AttachClient(0, snd)
	n.AttachClient(1, rcv)
	if !n.Kernel().RunUntil(func() bool { return snd.Done() }, 5000) {
		t.Fatal("not done")
	}
	if snd.Retransmits != 0 || rcv.Corrupted != 0 || rcv.Duplicate != 0 {
		t.Fatalf("clean network saw retransmits=%d corrupted=%d dup=%d",
			snd.Retransmits, rcv.Corrupted, rcv.Duplicate)
	}
}

func TestChecksumDetectsMutation(t *testing.T) {
	data := []byte("route packets not wires")
	msg := encodeRetry(retryData, 5, data)
	// A flip anywhere — kind, seq, checksum, or data — must fail decode.
	for _, pos := range []int{0, 3, 10, retryHeader + 3} {
		m := append([]byte(nil), msg...)
		m[pos] ^= 0x40
		if _, _, ok := decodeRetry(m, retryData); ok {
			t.Fatalf("mutation at byte %d undetected", pos)
		}
	}
	if _, _, ok := decodeRetry(msg, retryData); !ok {
		t.Fatal("clean message rejected")
	}
}

func TestRetriesExhaustedSurfacesError(t *testing.T) {
	// A receiver that never answers (no client attached at the
	// destination) forces every message through the full backoff ladder;
	// the sender must give up after MaxRetries and surface an error
	// instead of retransmitting forever.
	n := buildNet(t, 9, nil)
	msgs := [][]byte{[]byte("into the void")}
	snd := NewReliableSender(6, msgs, flit.MaskFor(0))
	snd.Timeout = 20
	snd.MaxRetries = 3
	n.AttachClient(0, snd)
	if !n.Kernel().RunUntil(func() bool { return snd.Done() }, 20000) {
		t.Fatalf("sender never gave up (retransmits=%d)", snd.Retransmits)
	}
	if snd.Err() == nil {
		t.Fatal("Done with no ack but Err() == nil")
	}
	if snd.FailedCount != 1 || snd.AckedCount != 0 {
		t.Fatalf("failed=%d acked=%d, want 1,0", snd.FailedCount, snd.AckedCount)
	}
	if snd.Retransmits != int64(snd.MaxRetries) {
		t.Fatalf("retransmits = %d, want %d", snd.Retransmits, snd.MaxRetries)
	}
}

func TestRetryBackoffDoubles(t *testing.T) {
	s := NewReliableSender(1, nil, flit.MaskFor(0))
	s.Timeout = 100
	// Default cap is 8x the base timeout.
	want := []int64{100, 200, 400, 800, 800, 800}
	for tries, w := range want {
		if got := s.backoffFor(tries); got != w {
			t.Fatalf("backoffFor(%d) = %d, want %d", tries, got, w)
		}
	}
	s.MaxTimeout = 250
	if got := s.backoffFor(4); got != 250 {
		t.Fatalf("capped backoff = %d, want 250", got)
	}
}
