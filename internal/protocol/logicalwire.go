// Package protocol implements the higher-level services Section 2.2 of the
// paper layers on top of the reliable-datagram port: logical wires, a
// memory read/write service, flow-controlled data streams, and the
// end-to-end checking-with-retry that §2.5 suggests for clients needing
// transient-fault tolerance. Each service is ordinary client logic — "logic
// local to the network clients" — built only on the Port API.
package protocol

import (
	"encoding/binary"

	"repro/internal/flit"
	"repro/internal/network"
	"repro/internal/stats"
)

// WireBundle is the §2.2 worked example: a bundle of up to 8 logical wires
// from tile i that behave as if directly connected to tile j. The sending
// side monitors the wire state and, on any change, injects a single-flit
// packet with data size 16: "eight of the 16 data bits hold the state of
// the lines while the remaining data bits identify this flit as containing
// logical wires."
type WireBundle struct {
	ID byte // bundle identifier carried in the high 8 bits
}

// wireKind tags a payload as carrying logical-wire state — the §2.2
// "remaining data bits identify this flit as containing logical wires."
// Without it, unrelated packets delivered to the same tile would be
// misread as wire updates.
const wireKind = 0x57

// wirePayload encodes the kind tag, the wire state, the bundle id, and the
// cycle the change occurred (the timestamp is measurement bookkeeping; the
// architectural payload is the first bytes).
func (b WireBundle) wirePayload(state byte, now int64) []byte {
	p := make([]byte, 11)
	p[0] = wireKind
	p[1] = state
	p[2] = b.ID
	binary.LittleEndian.PutUint64(p[3:], uint64(now))
	return p
}

// WireSender drives the bundle. Client logic calls Set whenever the wires
// change; the next Tick arbitrates for the port and injects the update.
type WireSender struct {
	Bundle WireBundle
	Dst    int
	Mask   flit.VCMask
	Class  int

	state   byte
	dirty   bool
	changed int64

	Updates int64
}

// Set drives a new state onto the logical wires.
func (w *WireSender) Set(state byte, now int64) {
	if state == w.state && w.Updates > 0 {
		return
	}
	w.state = state
	w.dirty = true
	w.changed = now
}

// State reports the currently driven state.
func (w *WireSender) State() byte { return w.state }

// Tick implements network.Client.
func (w *WireSender) Tick(now int64, p *network.Port) {
	p.Deliveries()
	if !w.dirty {
		return
	}
	if _, err := p.Send(w.Dst, w.Bundle.wirePayload(w.state, w.changed), w.Mask, w.Class); err == nil {
		w.dirty = false
		w.Updates++
	}
}

// WireReceiver terminates logical-wire bundles: arriving flits are decoded
// and the bundle outputs updated. Latency records change-to-update delay.
type WireReceiver struct {
	outputs [256]byte
	valid   [256]bool

	Latency *stats.Hist
	Updates int64
}

// NewWireReceiver returns a receiver.
func NewWireReceiver() *WireReceiver {
	return &WireReceiver{Latency: stats.NewHist(1024)}
}

// Output reports the last received state of a bundle and whether any
// update has arrived.
func (r *WireReceiver) Output(bundle byte) (byte, bool) {
	return r.outputs[bundle], r.valid[bundle]
}

// Tick implements network.Client.
func (r *WireReceiver) Tick(now int64, p *network.Port) {
	for _, d := range p.Deliveries() {
		if len(d.Payload) < 11 || d.Payload[0] != wireKind {
			continue
		}
		state, id := d.Payload[1], d.Payload[2]
		changed := int64(binary.LittleEndian.Uint64(d.Payload[3:]))
		r.outputs[id] = state
		r.valid[id] = true
		r.Latency.Add(now - changed)
		r.Updates++
	}
}
