package protocol

import (
	"encoding/binary"
	"fmt"

	"repro/internal/flit"
	"repro/internal/network"
	"repro/internal/route"
	"repro/internal/router"
	"repro/internal/topology"
)

// In-band reservation programming. §2.1: "the network also presents a
// number of registers that can be used to reserve resources for particular
// virtual channels ... to provide time-slot reservations for certain
// classes of traffic"; routes to them address "special network clients
// including I/O pads and internal network registers." §2.6: "When the
// system is configured, routes are laid out for all of the static traffic
// and reservations are made for each link of each route by setting entries
// in the appropriate reservation register."
//
// A RegisterAgent is the per-tile register file: it receives reservation
// packets over the network itself and programs its router's cyclic
// reservation tables. A Configurator walks a flow's route and programs
// every hop in-band, so static flows can be laid out with no out-of-band
// magic.

const (
	ctlReserve    = 0xC0
	ctlReserveAck = 0xC1
	ctlQuery      = 0xC2
	ctlQueryAck   = 0xC3
)

// control request: [kind(1) seq(2) dir(1) slot(2) flow(2)]
// control ack:     [kind(1) seq(2) status(1)]
const (
	ctlReqLen = 8
	ctlAckLen = 4
	ctlOK     = 0
	ctlFailed = 1
)

func encodeReserve(seq uint16, d route.Dir, slot uint16, flow uint16) []byte {
	p := make([]byte, ctlReqLen)
	p[0] = ctlReserve
	binary.LittleEndian.PutUint16(p[1:], seq)
	p[3] = byte(d)
	binary.LittleEndian.PutUint16(p[4:], slot)
	binary.LittleEndian.PutUint16(p[6:], flow)
	return p
}

// RegisterAgent exposes a tile's router registers as a network client.
type RegisterAgent struct {
	Router *router.Router
	Mask   flit.VCMask
	Class  int

	Programmed int64
	Rejected   int64
}

// QueryRegisters builds a read request for the reservation table of the
// output port in direction d: [kind seq dir]. The agent answers with
// [kind seq status period(2) reservedSlots(2)].
func QueryRegisters(seq uint16, d route.Dir) []byte {
	p := make([]byte, 4)
	p[0] = ctlQuery
	binary.LittleEndian.PutUint16(p[1:], seq)
	p[3] = byte(d)
	return p
}

// DecodeQueryReply parses a register-read reply.
func DecodeQueryReply(p []byte) (seq uint16, period, reservedSlots int, ok bool) {
	if len(p) < 8 || p[0] != ctlQueryAck || p[3] != ctlOK {
		return 0, 0, 0, false
	}
	seq = binary.LittleEndian.Uint16(p[1:])
	period = int(binary.LittleEndian.Uint16(p[4:]))
	reservedSlots = int(binary.LittleEndian.Uint16(p[6:]))
	return seq, period, reservedSlots, true
}

// Tick implements network.Client.
func (a *RegisterAgent) Tick(now int64, p *network.Port) {
	for _, d := range p.Deliveries() {
		if len(d.Payload) >= 4 && d.Payload[0] == ctlQuery {
			a.handleQuery(d, p)
			continue
		}
		if len(d.Payload) < ctlReqLen || d.Payload[0] != ctlReserve {
			continue
		}
		seq := binary.LittleEndian.Uint16(d.Payload[1:])
		dir := route.Dir(d.Payload[3])
		slot := binary.LittleEndian.Uint16(d.Payload[4:])
		flow := binary.LittleEndian.Uint16(d.Payload[6:])
		status := byte(ctlOK)
		if dir > route.West {
			status = ctlFailed
		} else if err := a.Router.Reservations(dir).Reserve(int(slot), int(flow)); err != nil {
			status = ctlFailed
		}
		if status == ctlOK {
			a.Programmed++
		} else {
			a.Rejected++
		}
		ack := make([]byte, ctlAckLen)
		ack[0] = ctlReserveAck
		binary.LittleEndian.PutUint16(ack[1:], seq)
		ack[3] = status
		_, _ = p.Send(d.Src, ack, a.Mask, a.Class)
	}
}

// handleQuery answers a register read with the table's period and the
// number of reserved slots.
func (a *RegisterAgent) handleQuery(d *network.Delivery, p *network.Port) {
	seq := binary.LittleEndian.Uint16(d.Payload[1:])
	dir := route.Dir(d.Payload[3])
	reply := make([]byte, 8)
	reply[0] = ctlQueryAck
	binary.LittleEndian.PutUint16(reply[1:], seq)
	if dir > route.West {
		reply[3] = ctlFailed
		_, _ = p.Send(d.Src, reply, a.Mask, a.Class)
		return
	}
	table := a.Router.Reservations(dir)
	reply[3] = ctlOK
	binary.LittleEndian.PutUint16(reply[4:], uint16(table.Period()))
	binary.LittleEndian.PutUint16(reply[6:], uint16(float64(table.Period())*table.Utilization()+0.5))
	_, _ = p.Send(d.Src, reply, a.Mask, a.Class)
}

// progStep is one hop's reservation to program.
type progStep struct {
	tile int
	dir  route.Dir
	slot int
}

// Configurator programs a pre-scheduled flow's reservations over the
// network, one hop at a time, from its own tile. Attach it as (or call it
// from) the client of a management tile; when Done reports true the flow's
// slots are booked on every hop and the stream source may start at the
// matching phase.
type Configurator struct {
	Flow  int
	Mask  flit.VCMask
	Class int

	steps   []progStep
	next    int
	waiting bool
	seq     uint16

	Done   bool
	Failed bool
}

// NewConfigurator plans the programming of a flow from src to dst with the
// given injection phase, over the dimension-ordered route.
func NewConfigurator(topo topology.Topology, src, dst, flow, phase int, mask flit.VCMask) (*Configurator, error) {
	if flow <= 0 || flow > 0xFFFF {
		return nil, fmt.Errorf("protocol: flow id %d out of range", flow)
	}
	w, err := route.Compute(topo, src, dst)
	if err != nil {
		return nil, err
	}
	dirs, err := route.Walk(w)
	if err != nil {
		return nil, err
	}
	c := &Configurator{Flow: flow, Mask: mask}
	tile := src
	for i, d := range dirs {
		c.steps = append(c.steps, progStep{tile: tile, dir: d, slot: network.ReservationSlot(phase, i)})
		nextTile, ok := topo.Neighbor(tile, d)
		if !ok {
			return nil, fmt.Errorf("protocol: route leaves topology at tile %d", tile)
		}
		tile = nextTile
	}
	return c, nil
}

// Hops reports the number of hops being programmed.
func (c *Configurator) Hops() int { return len(c.steps) }

// Tick implements network.Client. Steps are programmed serially: the next
// request goes out once the previous hop acknowledged.
func (c *Configurator) Tick(now int64, p *network.Port) {
	for _, d := range p.Deliveries() {
		if len(d.Payload) < ctlAckLen || d.Payload[0] != ctlReserveAck {
			continue
		}
		seq := binary.LittleEndian.Uint16(d.Payload[1:])
		if !c.waiting || seq != c.seq {
			continue
		}
		c.waiting = false
		if d.Payload[3] != ctlOK {
			c.Failed = true
			c.Done = true
			return
		}
		c.next++
		if c.next == len(c.steps) {
			c.Done = true
		}
	}
	if c.Done || c.waiting || c.next >= len(c.steps) {
		return
	}
	step := c.steps[c.next]
	c.seq++
	payload := encodeReserve(c.seq, step.dir, uint16(step.slot), uint16(c.Flow))
	if _, err := p.Send(step.tile, payload, c.Mask, c.Class); err != nil {
		c.Failed = true
		c.Done = true
		return
	}
	c.waiting = true
}

// AgentWith combines a tile's RegisterAgent with another client: the agent
// drains the port's deliveries and serves the control packets among them,
// then ticks inner. Inner therefore sees no deliveries of its own; use
// this only for inner clients that send but do not consume (traffic
// sources, stream sources).
func AgentWith(agent *RegisterAgent, inner network.Client) network.Client {
	return network.ClientFunc(func(now int64, p *network.Port) {
		agent.Tick(now, p)
		if inner != nil {
			inner.Tick(now, p)
		}
	})
}
