package protocol

import (
	"bytes"
	"testing"

	"repro/internal/flit"
)

func TestIOPadBridgesTraffic(t *testing.T) {
	// Two pads on opposite corners: off-chip data enters pad A, crosses
	// the network, and leaves through pad B — §2's "gateways to networks
	// on other chips" as ordinary clients.
	n := buildNet(t, 41, nil)
	padIn := &IOPad{Mask: flit.MaskFor(0)}
	padOut := &IOPad{Mask: flit.MaskFor(1)}
	n.AttachClient(0, padIn)
	n.AttachClient(15, padOut)

	msgs := [][]byte{[]byte("frame-0"), []byte("frame-1"), []byte("frame-2")}
	for _, m := range msgs {
		if !padIn.ExternalSend(15, m) {
			t.Fatal("ingress refused with empty buffer")
		}
	}
	n.Run(100)
	got := padOut.ExternalRecv()
	if len(got) != len(msgs) {
		t.Fatalf("pad received %d of %d", len(got), len(msgs))
	}
	for i, d := range got {
		if !bytes.Equal(d.Payload, msgs[i]) {
			t.Fatalf("message %d corrupted: %q", i, d.Payload)
		}
		if d.Src != 0 {
			t.Fatalf("message %d source = %d", i, d.Src)
		}
	}
	if padIn.Injected != 3 || padOut.Received != 3 {
		t.Fatalf("counters: injected=%d received=%d", padIn.Injected, padOut.Received)
	}
	if len(padOut.ExternalRecv()) != 0 {
		t.Fatal("egress not drained")
	}
}

func TestIOPadIngressBounded(t *testing.T) {
	pad := &IOPad{Mask: flit.MaskFor(0), IngressCap: 2}
	if !pad.ExternalSend(1, []byte("a")) || !pad.ExternalSend(1, []byte("b")) {
		t.Fatal("sends within capacity refused")
	}
	if pad.ExternalSend(1, []byte("c")) {
		t.Fatal("over-capacity send accepted")
	}
	if pad.IngressDropped != 1 || pad.Pending() != 2 {
		t.Fatalf("dropped=%d pending=%d", pad.IngressDropped, pad.Pending())
	}
}

func TestIOPadBadDestinationDropped(t *testing.T) {
	n := buildNet(t, 43, nil)
	pad := &IOPad{Mask: flit.MaskFor(0)}
	n.AttachClient(0, pad)
	pad.ExternalSend(999, []byte("nowhere"))
	n.Run(10)
	if pad.IngressDropped != 1 || pad.Pending() != 0 {
		t.Fatalf("bad destination not dropped: dropped=%d pending=%d",
			pad.IngressDropped, pad.Pending())
	}
}
