package protocol

import (
	"repro/internal/flit"
	"repro/internal/network"
)

// IOPad models the §2 special clients: "I/O pads may connect directly to
// adjacent tiles or may be addressed as special clients of the network."
// A pad occupies a tile like any other client and bridges between the
// network and an off-chip interface: an ingress queue of messages arriving
// from the pins (injected into the network subject to the port's ready
// signals) and an egress queue of packets addressed to the pad (drained by
// the off-chip side).
type IOPad struct {
	Mask  flit.VCMask
	Class int
	// IngressCap bounds the pad's ingress buffering (pins are faster than
	// arbitrated injection under load); 0 means 16.
	IngressCap int

	ingress []padMsg
	egress  []*network.Delivery

	Injected       int64
	IngressDropped int64
	Received       int64
}

type padMsg struct {
	dst     int
	payload []byte
}

// ExternalSend offers a message from the pins. It reports whether the
// pad's ingress buffer had room.
func (io *IOPad) ExternalSend(dst int, payload []byte) bool {
	cap := io.IngressCap
	if cap <= 0 {
		cap = 16
	}
	if len(io.ingress) >= cap {
		io.IngressDropped++
		return false
	}
	io.ingress = append(io.ingress, padMsg{dst: dst, payload: append([]byte(nil), payload...)})
	return true
}

// ExternalRecv drains the packets the network delivered to the pad, as the
// off-chip side would clock them out.
func (io *IOPad) ExternalRecv() []*network.Delivery {
	out := io.egress
	io.egress = nil
	return out
}

// Pending reports queued ingress messages.
func (io *IOPad) Pending() int { return len(io.ingress) }

// Tick implements network.Client.
func (io *IOPad) Tick(now int64, p *network.Port) {
	for _, d := range p.Deliveries() {
		// The port recycles Delivery objects after the next Deliveries
		// call; egress outlives that, so keep a private copy.
		cp := *d
		cp.Payload = append([]byte(nil), d.Payload...)
		io.egress = append(io.egress, &cp)
		io.Received++
	}
	// One injection attempt per cycle, like any 256-bit port client.
	if len(io.ingress) == 0 {
		return
	}
	m := io.ingress[0]
	if _, err := p.Send(m.dst, m.payload, io.Mask, io.Class); err != nil {
		// Destination invalid: drop with accounting rather than wedge.
		io.ingress = io.ingress[1:]
		io.IngressDropped++
		return
	}
	io.ingress = io.ingress[1:]
	io.Injected++
}
