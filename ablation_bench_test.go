package noc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/flit"
	"repro/internal/network"
	"repro/internal/router"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Ablation benchmarks for the design choices DESIGN.md calls out. Each
// reports the measured effect as custom benchmark metrics, so
// `go test -bench Ablation -benchtime 1x` doubles as an ablation report.

// BenchmarkAblationSpeculativeVA measures §2.3's latency optimization:
// virtual-channel allocation in parallel with switch arbitration saves one
// cycle per hop on head flits.
func BenchmarkAblationSpeculativeVA(b *testing.B) {
	run := func(nonspec bool) float64 {
		p := core.DefaultRunParams()
		p.Rate = 0.05
		p.NonSpeculative = nonspec
		p.WarmupCycles, p.MeasureCycles = 500, 2000
		res, err := core.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		return res.AvgLatency
	}
	var spec, nonspec float64
	for i := 0; i < b.N; i++ {
		spec = run(false)
		nonspec = run(true)
	}
	b.ReportMetric(spec, "lat-speculative-cyc")
	b.ReportMetric(nonspec, "lat-sequential-cyc")
	b.ReportMetric(nonspec-spec, "cycles-saved")
}

// BenchmarkAblationWorkConserving measures strict vs work-conserving
// reservation slots: strict TDM wastes unclaimed reserved slots, lowering
// dynamic throughput when reservations are dense.
func BenchmarkAblationWorkConserving(b *testing.B) {
	run := func(workConserving bool) (float64, float64) {
		topo, err := topology.NewFoldedTorus(4, 4)
		if err != nil {
			b.Fatal(err)
		}
		rc := router.DefaultConfig(0)
		rc.ReservedVC = 7
		rc.ResPeriod = 4 // dense tables: half the slots on doubly-booked links
		rc.WorkConserving = workConserving
		n, err := network.New(network.Config{Topo: topo, Router: rc, Seed: 5, Warmup: 300})
		if err != nil {
			b.Fatal(err)
		}
		// Reserve several flows but leave them idle: the slots are booked
		// and unclaimed, the §2.6 worst case for strict TDM. Flows whose
		// slots collide on shared links simply fail to book, as a real
		// scheduler's attempt would.
		booked := 0
		for i, pair := range [][2]int{{0, 10}, {15, 5}, {3, 9}, {12, 6}, {1, 11}, {14, 4}} {
			if _, err := n.ReserveFlow(pair[0], pair[1], i+1, i%4); err == nil {
				booked++
			}
		}
		if booked < 3 {
			b.Fatalf("only %d flows booked", booked)
		}
		n.Recorder().MeasureUntil = 2300
		for tile := 0; tile < topo.NumTiles(); tile++ {
			g := traffic.NewGenerator(tile, traffic.Uniform{Tiles: 16}, 0.8, 2, flit.VCMask(0x77), 3)
			g.StopAt = 2300
			n.AttachClient(tile, g)
		}
		n.Run(2300)
		rec := n.Recorder()
		return float64(rec.WindowFlits) / 2000 / 16, rec.PacketLatency.Mean()
	}
	var strictTp, strictLat, wcTp, wcLat float64
	for i := 0; i < b.N; i++ {
		strictTp, strictLat = run(false)
		wcTp, wcLat = run(true)
	}
	b.ReportMetric(strictTp, "strict-flits/node/cyc")
	b.ReportMetric(wcTp, "workconserving-flits/node/cyc")
	b.ReportMetric(strictLat, "strict-lat-cyc")
	b.ReportMetric(wcLat, "workconserving-lat-cyc")
}

// BenchmarkAblationElasticLinks measures the ref-[4] buffer saving: a
// single-VC stream over 1-flit buffers, credited vs elastic.
func BenchmarkAblationElasticLinks(b *testing.B) {
	run := func(elastic bool) float64 {
		topo, err := topology.NewMesh(4, 4)
		if err != nil {
			b.Fatal(err)
		}
		rc := router.DefaultConfig(0)
		rc.BufFlits = 1
		n, err := network.New(network.Config{Topo: topo, Router: rc, ElasticLinks: elastic, Seed: 7, Warmup: 100})
		if err != nil {
			b.Fatal(err)
		}
		n.Recorder().MeasureUntil = 2100
		n.AttachClient(3, network.ClientFunc(func(now int64, p *network.Port) { p.Deliveries() }))
		n.AttachClient(0, network.ClientFunc(func(now int64, p *network.Port) {
			if now < 2100 {
				_, _ = p.Send(3, []byte{1}, flit.MaskFor(0), 0)
			}
		}))
		n.Run(2100)
		return float64(n.Recorder().WindowFlits) / 2000
	}
	var credited, elastic float64
	for i := 0; i < b.N; i++ {
		credited = run(false)
		elastic = run(true)
	}
	b.ReportMetric(credited, "credited-flits/cyc")
	b.ReportMetric(elastic, "elastic-flits/cyc")
}

// BenchmarkAblationCutThrough compares wormhole and virtual cut-through
// flow control with 4-flit packets at moderate load: cut-through keeps
// blocked packets out of intermediate routers, which shows up in the tail
// latency.
func BenchmarkAblationCutThrough(b *testing.B) {
	run := func(vct bool) (float64, int64) {
		p := core.DefaultRunParams()
		p.Topology = "mesh"
		p.K = 8
		p.Rate = 0.35
		p.FlitsPerPacket = 4
		p.CutThrough = vct
		p.WarmupCycles, p.MeasureCycles = 500, 1500
		res, err := core.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		return res.AvgLatency, res.P99Latency
	}
	var whAvg, vctAvg float64
	var whP99, vctP99 int64
	for i := 0; i < b.N; i++ {
		whAvg, whP99 = run(false)
		vctAvg, vctP99 = run(true)
	}
	b.ReportMetric(whAvg, "wormhole-avg-cyc")
	b.ReportMetric(float64(whP99), "wormhole-p99-cyc")
	b.ReportMetric(vctAvg, "vct-avg-cyc")
	b.ReportMetric(float64(vctP99), "vct-p99-cyc")
}

// BenchmarkAblationAdaptiveRouting reports the E19 headline as a single
// metric pair: transpose saturation under DOR vs west-first adaptivity.
func BenchmarkAblationAdaptiveRouting(b *testing.B) {
	run := func(adaptive bool) float64 {
		p := core.DefaultRunParams()
		p.Topology = "mesh"
		p.K = 8
		p.Pattern = "transpose"
		p.Rate = 0.5
		p.FlitsPerPacket = 2
		p.Adaptive = adaptive
		p.WarmupCycles, p.MeasureCycles = 500, 1500
		res, err := core.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		return res.AcceptedFlits
	}
	var dor, adaptive float64
	for i := 0; i < b.N; i++ {
		dor = run(false)
		adaptive = run(true)
	}
	b.ReportMetric(dor, "dor-accepted")
	b.ReportMetric(adaptive, "adaptive-accepted")
}

// BenchmarkAblationTorusTieBreak measures the balanced half-ring tie-break
// against always-positive routing... indirectly: it reports the saturation
// throughput of the torus, which collapses if ties all load one direction.
func BenchmarkAblationTorusTieBreak(b *testing.B) {
	var sat float64
	for i := 0; i < b.N; i++ {
		p := core.DefaultRunParams()
		p.K = 8
		p.Rate = 0.9
		p.WarmupCycles, p.MeasureCycles = 500, 1500
		res, err := core.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		sat = res.AcceptedFlits
	}
	b.ReportMetric(sat, "torus-accepted@0.9")
}

// BenchmarkAblationBufferDepth sweeps the §3.2 buffer budget on the
// baseline torus and reports latency at a moderate load for 1/2/4/8-flit
// buffers.
func BenchmarkAblationBufferDepth(b *testing.B) {
	lat := map[int]float64{}
	for i := 0; i < b.N; i++ {
		for _, buf := range []int{1, 2, 4, 8} {
			p := core.DefaultRunParams()
			p.BufFlits = buf
			p.Rate = 0.5
			p.FlitsPerPacket = 4
			p.WarmupCycles, p.MeasureCycles = 500, 1500
			res, err := core.Run(p)
			if err != nil {
				b.Fatal(err)
			}
			lat[buf] = res.AvgLatency
		}
	}
	for _, buf := range []int{1, 2, 4, 8} {
		b.ReportMetric(lat[buf], "lat-buf"+string(rune('0'+buf))+"-cyc")
	}
}
