package noc

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

// The crash-resume smoke test exercises the checkpoint/restore stack the
// way a real outage would: a nocsim fault campaign is SIGKILLed mid-run
// with no chance to flush anything, its newest checkpoint is torn in half
// (the torn-write case the atomic rename protocol defends against), and a
// -resume run against the same directory must fall back to the previous
// valid checkpoint and finish the campaign with a report and metrics CSV
// byte-identical to an uninterrupted reference run. `make ci` runs it as
// part of the race-detected suite.

// campaignArgs are the shared flags for all three runs: the reference run
// checkpoints too (into its own directory), so every run has the same
// configuration hash and the same meter-off accounting.
func campaignArgs(dir, metricsOut string) []string {
	return []string{
		"-k", "4", "-rate", "0.2", "-mtbf", "3000", "-watchdog", "64",
		"-seed", "7", "-warmup", "200", "-measure", "60000",
		"-metrics", "-metrics-out", metricsOut,
		"-checkpoint-every", "2000", "-checkpoint-dir", dir,
	}
}

// stripPaths drops the report lines that legitimately differ between
// runs (the emitted artifact paths); everything else must match exactly.
func stripPaths(out []byte) string {
	var kept []string
	for _, line := range strings.Split(string(out), "\n") {
		if strings.Contains(line, "metrics written to") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// checkpointFiles lists the ckpt-*.noc files in dir, sorted by name (the
// zero-padded cycle number makes that oldest-first).
func checkpointFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "ckpt-*.noc"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	return names
}

func TestCrashResumeSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI crash-resume smoke test is not -short")
	}
	bin := buildNocsim(t)
	work := t.TempDir()

	// Uninterrupted reference: the ground truth the resumed run must hit.
	refDir := filepath.Join(work, "ref-ckpt")
	refCSV := filepath.Join(work, "ref.csv")
	refCmd := exec.Command(bin, campaignArgs(refDir, refCSV)...)
	refOut, err := refCmd.Output()
	if err != nil {
		t.Fatalf("reference campaign failed: %v\n%s", err, refOut)
	}

	// Crash run: identical flags, fresh checkpoint directory. Poll for two
	// on-disk checkpoints (so a torn newest still leaves a fallback), then
	// SIGKILL — no signal handler, no flush, exactly like a crash.
	crashDir := filepath.Join(work, "crash-ckpt")
	crashCSV := filepath.Join(work, "crash.csv")
	crashCmd := exec.Command(bin, campaignArgs(crashDir, crashCSV)...)
	crashCmd.Stdout = new(bytes.Buffer)
	crashCmd.Stderr = new(bytes.Buffer)
	if err := crashCmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for len(checkpointFiles(t, crashDir)) < 2 {
		if time.Now().After(deadline) {
			crashCmd.Process.Kill()
			crashCmd.Wait()
			t.Fatal("no two checkpoints appeared within 60s")
		}
		time.Sleep(time.Millisecond)
	}
	if err := crashCmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL failed (did the run finish early?): %v", err)
	}
	if err := crashCmd.Wait(); err == nil {
		t.Fatal("crash run exited cleanly; the campaign horizon is too short to kill mid-run")
	}
	if _, err := os.Stat(crashCSV); !os.IsNotExist(err) {
		t.Fatalf("killed run left a metrics CSV (stat err %v); it was not interrupted", err)
	}

	// Tear the newest checkpoint: keep the first half of its bytes, as if
	// the machine died mid-write without the rename protocol. LoadLatest
	// must reject it on CRC and fall back to the previous file.
	files := checkpointFiles(t, crashDir)
	newest := files[len(files)-1]
	blob, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, blob[:len(blob)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume: same flags plus -resume. It must pick up from the fallback
	// checkpoint, replay the remaining cycles, and land on the reference
	// report and metrics bytes.
	gotCSV := filepath.Join(work, "got.csv")
	resumeCmd := exec.Command(bin, append(campaignArgs(crashDir, gotCSV), "-resume")...)
	gotOut, err := resumeCmd.Output()
	if err != nil {
		t.Fatalf("resumed campaign failed: %v\n%s", err, gotOut)
	}
	if got, ref := stripPaths(gotOut), stripPaths(refOut); got != ref {
		t.Errorf("resumed campaign report diverged from the uninterrupted reference\n--- reference ---\n%s\n--- resumed ---\n%s", ref, got)
	}
	ref, err := os.ReadFile(refCSV)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(gotCSV)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Errorf("resumed metrics CSV diverged from the uninterrupted reference (%d vs %d bytes)", len(got), len(ref))
	}
}
