package noc

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/flit"
	"repro/internal/network"
	"repro/internal/router"
	"repro/internal/telemetry"
	"repro/internal/telemetry/serve"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// The cross-shard determinism suite proves the tentpole contract of the
// sharded cycle loop: for any shard count, every observable output —
// golden sweep CSVs, experiment tables, telemetry exports, recorder
// state — is byte-identical to the sequential engine. It runs under
// `go test -race ./...` (and hence `make ci`), so the lockstep worker
// pool is exercised with the race detector watching.

// shardCounts returns the shard counts the suite exercises: the sharded
// basics plus whatever GOMAXPROCS resolves to on this machine.
func shardCounts() []int {
	counts := []int{2, 3}
	if p := runtime.GOMAXPROCS(0); p > 1 && p != 2 && p != 3 {
		counts = append(counts, p)
	}
	return counts
}

// withShards runs fn with the package-default shard count set to n,
// restoring the sequential default afterwards.
func withShards(t *testing.T, n int, fn func()) {
	t.Helper()
	core.SetShards(n)
	defer core.SetShards(1)
	fn()
}

// withBatching runs fn with the package-default epoch-batching cap set to
// n (negative = off), restoring the network default afterwards.
func withBatching(t *testing.T, n int, fn func()) {
	t.Helper()
	core.SetBatchEpochs(n)
	defer core.SetBatchEpochs(0)
	fn()
}

// readGolden loads a committed golden file (written by the sequential
// engine).
func readGolden(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	return string(b)
}

// TestShardedGoldenSweep reruns the golden load-latency sweeps with the
// network sharded and requires the committed sequential bytes.
func TestShardedGoldenSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded golden sweeps are not -short")
	}
	for _, shards := range shardCounts() {
		shards := shards
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			withShards(t, shards, func() {
				for _, seed := range []int64{1, 3} {
					want := readGolden(t, fmt.Sprintf("golden_sweep_seed%d.csv", seed))
					if got := goldenSweepCSV(t, seed); got != want {
						t.Errorf("seed %d: sharded sweep diverged from sequential golden\n--- want ---\n%s--- got ---\n%s",
							seed, want, got)
					}
				}
			})
		})
	}
}

// TestShardedGoldenExperiments reruns the pinned E1 (baseline), E4
// (mesh-vs-torus), and E20 (chaos campaign — extremely sensitive to
// simulation order) quick tables with sharding on.
func TestShardedGoldenExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded golden experiments are not -short")
	}
	for _, id := range []string{"E1", "E4", "E20"} {
		id := id
		t.Run(id, func(t *testing.T) {
			want := readGolden(t, fmt.Sprintf("golden_%s_quick.txt", strings.ToLower(id)))
			for _, shards := range shardCounts() {
				withShards(t, shards, func() {
					e, err := core.ByID(id)
					if err != nil {
						t.Fatal(err)
					}
					tbl, err := e.Run(true)
					if err != nil {
						t.Fatal(err)
					}
					if got := tbl.Format(); got != want {
						t.Errorf("shards=%d: %s table diverged from sequential golden\n--- want ---\n%s--- got ---\n%s",
							shards, id, want, got)
					}
				})
			}
		})
	}
}

// TestBatchingGolden reruns the golden outputs at shard count 2 with
// epoch batching explicitly off and with a deliberately tiny epoch cap
// (3 cycles, so epoch boundaries land everywhere relative to sampling
// and drain horizons): the observable bytes must match the committed
// sequential goldens either way. Every other sharded suite runs the
// default cap (64), so together the matrix covers batching
// {off, tiny, default} × shards {1, 2, N}.
func TestBatchingGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("batching goldens are not -short")
	}
	for _, batch := range []int{-1, 3} {
		batch := batch
		t.Run(fmt.Sprintf("batch%d", batch), func(t *testing.T) {
			withBatching(t, batch, func() {
				withShards(t, 2, func() {
					want := readGolden(t, "golden_sweep_seed1.csv")
					if got := goldenSweepCSV(t, 1); got != want {
						t.Errorf("batch=%d: sweep diverged from sequential golden\n--- want ---\n%s--- got ---\n%s",
							batch, want, got)
					}
					for _, id := range []string{"E1", "E4", "E20"} {
						want := readGolden(t, fmt.Sprintf("golden_%s_quick.txt", strings.ToLower(id)))
						e, err := core.ByID(id)
						if err != nil {
							t.Fatal(err)
						}
						tbl, err := e.Run(true)
						if err != nil {
							t.Fatal(err)
						}
						if got := tbl.Format(); got != want {
							t.Errorf("batch=%d: %s table diverged from sequential golden\n--- want ---\n%s--- got ---\n%s",
								batch, id, want, got)
						}
					}
				})
			})
		})
	}
}

// TestShardedTelemetryCSV compares the telemetry metrics export (counters,
// per-VC occupancy, link totals, sampled series) of a sharded run against
// the sequential run. Lifecycle tracing forces one shard, so this uses a
// sampling-only probe — the sharded telemetry configuration.
func TestShardedTelemetryCSV(t *testing.T) {
	run := func(shards, batch int) (string, int) {
		probe := telemetry.New(telemetry.Config{SampleEvery: 20})
		topo, err := topology.NewFoldedTorus(4, 4)
		if err != nil {
			t.Fatal(err)
		}
		n, err := network.New(network.Config{
			Topo: topo, Router: router.DefaultConfig(0), Seed: 5, Probe: probe, Shards: shards, BatchEpochs: batch,
		})
		if err != nil {
			t.Fatal(err)
		}
		for tile := 0; tile < topo.NumTiles(); tile++ {
			g := traffic.NewGenerator(tile, traffic.Uniform{Tiles: 16}, 0.2, 2, flit.VCMask(0xFF), 1)
			g.StopAt = 400
			n.AttachClient(tile, g)
		}
		n.Run(400)
		if !n.Drain(10000) {
			t.Fatalf("shards=%d: did not drain", shards)
		}
		var csv strings.Builder
		if err := probe.WriteMetricsCSV(&csv); err != nil {
			t.Fatal(err)
		}
		return csv.String(), n.Shards()
	}
	want, seq := run(1, 0)
	if seq != 1 {
		t.Fatalf("sequential run reports %d shards", seq)
	}
	for _, shards := range shardCounts() {
		got, eff := run(shards, 0)
		if eff != shards {
			t.Fatalf("network reports %d effective shards, want %d", eff, shards)
		}
		if got != want {
			t.Errorf("shards=%d: telemetry CSV diverged from sequential", shards)
		}
	}
	// Telemetry sampling must land on identical cycle boundaries whether
	// epochs are batched by the default cap (above), disabled, or tiny.
	for _, batch := range []int{-1, 3} {
		if got, _ := run(2, batch); got != want {
			t.Errorf("batch=%d: telemetry CSV diverged from sequential", batch)
		}
	}
}

// TestShardedSoak is the random-traffic soak: larger network, multiple
// seeds and patterns, full RunResult comparison, flit-leak accounting.
func TestShardedSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak is not -short")
	}
	base := core.DefaultRunParams()
	base.K = 8
	base.FlitsPerPacket = 2
	base.WarmupCycles = 300
	base.MeasureCycles = 900
	fingerprint := func(p core.RunParams) string {
		res, err := core.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		res.Params.Shards = 0 // the only field allowed to differ
		return fmt.Sprintf("%+v", res)
	}
	for _, tc := range []struct {
		pattern string
		rate    float64
		seed    int64
	}{
		{"uniform", 0.35, 1},
		{"uniform", 0.35, 7},
		{"transpose", 0.25, 1},
		{"tornado", 0.15, 2},
	} {
		tc := tc
		t.Run(fmt.Sprintf("%s-r%v-s%d", tc.pattern, tc.rate, tc.seed), func(t *testing.T) {
			p := base
			p.Pattern = tc.pattern
			p.Rate = tc.rate
			p.Seed = tc.seed
			p.Shards = 1
			want := fingerprint(p)
			for _, shards := range shardCounts() {
				p.Shards = shards
				if got := fingerprint(p); got != want {
					t.Errorf("shards=%d diverged:\n--- sequential ---\n%s\n--- sharded ---\n%s",
						shards, want, got)
				}
			}
		})
	}
}

// TestShardedServeSnapshots proves the live observability service keeps
// the determinism contract: the serve collector's snapshot phase is
// serial (barrier-side), so the full JSON stream of published snapshots —
// health verdicts, hot links, heatmaps, latency quantiles — is
// byte-identical for any shard count.
func TestShardedServeSnapshots(t *testing.T) {
	run := func(shards int) (string, int) {
		probe := telemetry.New(telemetry.Config{SampleEvery: 20})
		topo, err := topology.NewFoldedTorus(4, 4)
		if err != nil {
			t.Fatal(err)
		}
		n, err := network.New(network.Config{
			Topo: topo, Router: router.DefaultConfig(0), Seed: 5, Probe: probe, Shards: shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		for tile := 0; tile < topo.NumTiles(); tile++ {
			g := traffic.NewGenerator(tile, traffic.Uniform{Tiles: 16}, 0.2, 2, flit.VCMask(0xFF), 1)
			g.StopAt = 400
			n.AttachClient(tile, g)
		}
		col, err := serve.AttachCollector(n, serve.Config{Every: 64})
		if err != nil {
			t.Fatal(err)
		}
		var mirror strings.Builder
		col.SetMirror(&mirror)
		n.Run(400)
		if !n.Drain(10000) {
			t.Fatalf("shards=%d: did not drain", shards)
		}
		if err := col.MirrorErr(); err != nil {
			t.Fatalf("shards=%d: mirror error: %v", shards, err)
		}
		if col.Latest() == nil {
			t.Fatalf("shards=%d: no snapshot published", shards)
		}
		return mirror.String(), n.Shards()
	}
	want, seq := run(1)
	if seq != 1 {
		t.Fatalf("sequential run reports %d shards", seq)
	}
	if strings.Count(want, "\n") < 2 {
		t.Fatalf("mirror carries too few snapshots to prove anything:\n%s", want)
	}
	for _, shards := range shardCounts() {
		got, eff := run(shards)
		if eff != shards {
			t.Fatalf("network reports %d effective shards, want %d", eff, shards)
		}
		if got != want {
			t.Errorf("shards=%d: serve snapshot stream diverged from sequential", shards)
		}
	}
}
