package noc

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
)

// The warm-fork determinism suite extends the resume contract to the
// in-memory campaign engine: a run forked mid-flight — snapshotted to a
// byte buffer, its network Reset in place, fresh clients attached, and
// the snapshot restored with Network.Fork — must reproduce the
// committed straight-through goldens byte for byte, at any shard count
// and epoch-batching setting. This is a strictly stronger claim than
// resume (which restores into a *newly built* network): the fork path
// additionally proves that arena Reset returns a used network to a
// state indistinguishable from freshly constructed.

// forkAt arranges for fn to run with the in-memory fork point set,
// restoring the straight-through default afterwards.
func forkAt(t *testing.T, frac float64, fn func()) {
	t.Helper()
	core.SetForkAt(frac)
	defer core.SetForkAt(0)
	fn()
}

// TestForkedGoldenSweep forks the golden load-latency sweep mid-point
// across the shards {1, 2, N} × batching {off, default} grid, with the
// fork fraction rotating through 25/50/75% so every fraction, shard
// count, and batching setting is exercised. Every cell must reproduce
// the committed sequential golden bytes.
func TestForkedGoldenSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("forked golden sweeps are not -short")
	}
	want := readGolden(t, "golden_sweep_seed1.csv")
	fracs := []float64{0.25, 0.50, 0.75}
	shardList := append([]int{1}, shardCounts()...)
	for si, shards := range shardList {
		for bi, batch := range []int{-1, 0} { // off, network default
			frac := fracs[(si*2+bi)%len(fracs)]
			name := fmt.Sprintf("shards%d/batch%d/frac%.0f", shards, batch, 100*frac)
			t.Run(name, func(t *testing.T) {
				forkAt(t, frac, func() {
					withShards(t, shards, func() {
						withBatching(t, batch, func() {
							if got := goldenSweepCSV(t, 1); got != want {
								t.Errorf("forked sweep diverged from straight-through golden\n--- want ---\n%s--- got ---\n%s", want, got)
							}
						})
					})
				})
			})
		}
	}
}

// forkResultRow formats the measurement outputs of one RunResult for
// byte comparison (Params carries func fields, so struct equality is
// unavailable).
func forkResultRow(r core.RunResult) string {
	return fmt.Sprintf("%.4f,%.4f,%d,%d,%d,%.4f,%.6f,%.6f,%d,%d,seed=%d",
		r.AcceptedFlits, r.AvgLatency, r.P50Latency, r.P99Latency, r.MaxLatency,
		r.AvgNetLat, r.LinkUtilMean, r.LinkUtilMax, r.DeliveredPackets,
		r.DroppedPackets, r.Params.Seed)
}

func forkResultRows(rs []core.RunResult) string {
	var sb strings.Builder
	for _, r := range rs {
		sb.WriteString(forkResultRow(r))
		sb.WriteByte('\n')
	}
	return sb.String()
}

func replicateParams() core.RunParams {
	p := core.DefaultRunParams()
	p.WarmupCycles = 400
	p.MeasureCycles = 1200
	p.FlitsPerPacket = 2
	p.Rate = 0.25
	return p
}

// TestReplicatedRunDeterminism pins the warm-fork replication contract:
// replica 0 reproduces an uninterrupted Run byte for byte (same
// generators, same streams, network restored from its own warmup
// snapshot), and the whole replica vector is identical across repeated
// invocations and across shard counts.
func TestReplicatedRunDeterminism(t *testing.T) {
	p := replicateParams()
	straight, err := core.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := core.RunReplicated(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("got %d replicas, want 3", len(rs))
	}
	if got, want := forkResultRow(rs[0]), forkResultRow(straight); got != want {
		t.Errorf("replica 0 diverged from uninterrupted Run\n want %s\n got  %s", want, got)
	}
	again, err := core.RunReplicated(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := forkResultRows(again), forkResultRows(rs); got != want {
		t.Errorf("repeated RunReplicated diverged\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	for _, shards := range shardCounts() {
		shards := shards
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			withShards(t, shards, func() {
				sharded, err := core.RunReplicated(p, 3)
				if err != nil {
					t.Fatal(err)
				}
				if got, want := forkResultRows(sharded), forkResultRows(rs); got != want {
					t.Errorf("sharded replication diverged from sequential\n--- want ---\n%s--- got ---\n%s", want, got)
				}
			})
		})
	}
}

// TestReplicatedSweepMatchesRuns checks the sweep wrapper agrees with
// point-by-point RunReplicated calls.
func TestReplicatedSweepMatchesRuns(t *testing.T) {
	p := replicateParams()
	rates := []float64{0.1, 0.3}
	pts, err := core.SweepReplicated(p, rates, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, rate := range rates {
		q := p
		q.Rate = rate
		want, err := core.RunReplicated(q, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got := forkResultRows(pts[i].Replicas); got != forkResultRows(want) {
			t.Errorf("rate %.2f: sweep point diverged from direct replication\n--- want ---\n%s--- got ---\n%s",
				rate, forkResultRows(want), got)
		}
		if m := pts[i].Mean(); m.DeliveredPackets != want[0].DeliveredPackets+want[1].DeliveredPackets {
			t.Errorf("rate %.2f: Mean() delivered %d, want sum %d",
				rate, m.DeliveredPackets, want[0].DeliveredPackets+want[1].DeliveredPackets)
		}
	}
}

// TestArenaReuseDeterminism pins the arena Reset ≡ New invariant at the
// Run level: the second and third Run of a configuration execute on a
// pooled network re-initialized in place, interleaved with a different
// rate to dirty the pool, and every repetition must reproduce the first
// (fresh-build) result byte for byte.
func TestArenaReuseDeterminism(t *testing.T) {
	core.DrainArena()
	p := replicateParams()
	first, err := core.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	other := p
	other.Rate = 0.6 // drive the pooled network near saturation between runs
	if _, err := core.Run(other); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got, err := core.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if forkResultRow(got) != forkResultRow(first) {
			t.Errorf("reuse %d: pooled run diverged from fresh build\n want %s\n got  %s",
				i+1, forkResultRow(first), forkResultRow(got))
		}
	}
}
