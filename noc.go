package noc

import (
	"repro/internal/core"
	"repro/internal/flit"
	"repro/internal/network"
	"repro/internal/router"
	"repro/internal/topology"
)

// Core network types, re-exported from the implementation packages.
type (
	// Network is an assembled on-chip interconnection network.
	Network = network.Network
	// NetworkConfig parameterizes NewNetwork.
	NetworkConfig = network.Config
	// Port is the §2.1 reliable-datagram tile interface.
	Port = network.Port
	// Client is tile logic attached to a port.
	Client = network.Client
	// ClientFunc adapts a function to Client.
	ClientFunc = network.ClientFunc
	// Delivery is a reassembled packet handed to a client.
	Delivery = network.Delivery
	// Recorder accumulates latency/throughput/jitter measurements.
	Recorder = network.Recorder

	// RouterConfig parameterizes the §2.3 virtual-channel router.
	RouterConfig = router.Config
	// Topology is the tile connectivity and physical placement.
	Topology = topology.Topology
	// VCMask is the 8-bit virtual-channel mask of §2.1.
	VCMask = flit.VCMask

	// RunParams drives one measurement campaign.
	RunParams = core.RunParams
	// RunResult is its outcome.
	RunResult = core.RunResult
	// Experiment is one paper-reproduction experiment (E1..E19).
	Experiment = core.Experiment
	// Table is an experiment's paper-vs-measured output.
	Table = core.Table
)

// NewNetwork assembles a network.
func NewNetwork(cfg NetworkConfig) (*Network, error) { return network.New(cfg) }

// NewMesh returns a kx×ky 2-D mesh topology.
func NewMesh(kx, ky int) (*topology.Mesh, error) { return topology.NewMesh(kx, ky) }

// NewFoldedTorus returns the paper's folded-torus topology (0,2,3,1 fold).
func NewFoldedTorus(kx, ky int) (*topology.FoldedTorus, error) {
	return topology.NewFoldedTorus(kx, ky)
}

// DefaultRouterConfig returns the paper's router parameters: eight virtual
// channels with four flits of buffering each, credit flow control.
func DefaultRouterConfig(id int) RouterConfig { return router.DefaultConfig(id) }

// MaskFor returns the VC mask with exactly virtual channel vc set.
func MaskFor(vc int) VCMask { return flit.MaskFor(vc) }

// DefaultRunParams returns the baseline measurement configuration.
func DefaultRunParams() RunParams { return core.DefaultRunParams() }

// Run executes one measurement campaign.
func Run(p RunParams) (RunResult, error) { return core.Run(p) }

// Experiments returns the full E1–E19 paper-reproduction suite.
func Experiments() []Experiment { return core.All() }

// ExperimentByID looks up one experiment.
func ExperimentByID(id string) (Experiment, error) { return core.ByID(id) }
