package noc

import (
	"strings"
	"testing"

	"repro/internal/network"
	"repro/internal/telemetry"
)

// TestTelemetryReconciliation pins the accounting contract of the probe
// layer on the paper's 16-tile baseline: the port-level delivery counters
// agree exactly with the measurement recorder, and the heatmap's link
// totals are consistent with the traffic that produced them. Uniform
// traffic never picks its own tile, so no loopback packets (which bypass
// the network) can skew the comparison.
func TestTelemetryReconciliation(t *testing.T) {
	probe := telemetry.New(telemetry.Config{SampleEvery: 50})
	n := buildLoadedNet(t, 3000, func(cfg *network.Config) {
		cfg.Probe = probe
	})
	n.Run(3000)
	if !n.Drain(100000) {
		t.Fatalf("network did not drain (occupancy %d)", n.Occupancy())
	}

	rec := n.Recorder()
	if rec.DeliveredFlits == 0 {
		t.Fatal("no traffic delivered; reconciliation is vacuous")
	}
	if got, want := probe.TotalDeliveredFlits(), rec.DeliveredFlits; got != want {
		t.Errorf("probe delivered flits = %d, recorder = %d", got, want)
	}
	var pkts int64
	for _, rp := range probe.Routers {
		pkts += rp.DeliveredPackets
	}
	if pkts != rec.DeliveredPackets {
		t.Errorf("probe delivered packets = %d, recorder = %d", pkts, rec.DeliveredPackets)
	}
	// Fault-free run: everything ejected at a tile port belongs to a
	// reassembled packet (no abort tails).
	if got, want := probe.TotalEjectedFlits(), probe.TotalDeliveredFlits(); got != want {
		t.Errorf("ejected flits = %d, delivered flits = %d", got, want)
	}
	// Every delivered flit crossed at least one link (no loopbacks), and
	// every link flit was injected exactly once upstream.
	if probe.TotalLinkFlits() < rec.DeliveredFlits {
		t.Errorf("link flits %d < delivered flits %d", probe.TotalLinkFlits(), rec.DeliveredFlits)
	}
	var injected int64
	for _, rp := range probe.Routers {
		injected += rp.InjectedFlits
	}
	if injected != rec.DeliveredFlits {
		t.Errorf("injected flits = %d, delivered flits = %d (drained run must balance)", injected, rec.DeliveredFlits)
	}

	// The heatmap covers the full 4x4 die and its utilizations are duty
	// factors computed from the same link counters.
	hm := probe.Heatmap()
	lines := strings.Split(strings.TrimRight(hm, "\n"), "\n")
	if len(lines) != 5 { // header + 4 rows
		t.Fatalf("heatmap has %d lines, want 5:\n%s", len(lines), hm)
	}
	for _, lp := range probe.Links {
		if u := lp.Util(probe.Elapsed); u < 0 || u > 1 {
			t.Errorf("link %d utilization %v outside [0,1]", lp.Index, u)
		}
	}
	if probe.Elapsed != int64(n.Kernel().Now()) {
		t.Errorf("probe horizon %d != kernel now %d", probe.Elapsed, n.Kernel().Now())
	}
	if len(probe.Series) == 0 {
		t.Error("SampleEvery was set but no series rows were collected")
	}
}

// TestCycleLoopAllocFreeWithCounters extends the allocation gate to the
// counters-only probe: enabled telemetry counters are plain integer adds
// and must not reintroduce steady-state allocation. (Lifecycle tracing
// appends to the event log and is exempt by design.)
func TestCycleLoopAllocFreeWithCounters(t *testing.T) {
	probe := telemetry.New(telemetry.Config{})
	n := buildLoadedNet(t, 0, func(cfg *network.Config) {
		cfg.Probe = probe
	})
	n.Run(2000)
	const cyclesPerRun = 200
	allocs := testing.AllocsPerRun(5, func() {
		n.Run(cyclesPerRun)
	})
	if perCycle := allocs / cyclesPerRun; perCycle > 1 {
		t.Fatalf("counters-only cycle loop allocates %.2f objects/cycle, want ~0", perCycle)
	}
	if probe.TotalLinkFlits() == 0 {
		t.Fatal("probe counted nothing; the alloc check is vacuous")
	}
}
