package noc

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
)

// The resume determinism suite extends the cross-shard contract to
// checkpoint/restore: a golden experiment interrupted mid-run —
// snapshotted, torn down, rebuilt from configuration, and restored — must
// still produce the committed sequential goldens byte for byte, at any
// shard count. core.SetResumeAt drives the interruption: every Run and
// RunCampaign inside the experiment executes to the given fraction of its
// horizon, checkpoints, rebuilds a fresh network, restores, and continues
// there. (Runs whose configuration cannot be checkpointed — e.g. E20's
// physical-wire scenario — fall back to running straight through, which
// must also reproduce the golden.)

// resumeAt arranges for fn to run with the in-memory resume point set,
// restoring the straight-through default afterwards.
func resumeAt(t *testing.T, frac float64, fn func()) {
	t.Helper()
	core.SetResumeAt(frac)
	defer core.SetResumeAt(0)
	fn()
}

// TestResumedGoldenExperiments interrupts the pinned golden experiments
// at 25/50/75% of every run's horizon and resumes under shard counts
// {1, 2, N}. To bound runtime the fraction x shard-count matrix is paired
// diagonally (every fraction and every shard count appears; not every
// combination), rotated per experiment so the pairs differ across
// E1/E4/E20.
func TestResumedGoldenExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("resumed golden experiments are not -short")
	}
	fracs := []float64{0.25, 0.50, 0.75}
	shardList := append([]int{1}, shardCounts()...)
	for ei, id := range []string{"E1", "E4", "E20"} {
		id, ei := id, ei
		t.Run(id, func(t *testing.T) {
			want := readGolden(t, fmt.Sprintf("golden_%s_quick.txt", strings.ToLower(id)))
			for fi, frac := range fracs {
				shards := shardList[(ei+fi)%len(shardList)]
				t.Run(fmt.Sprintf("frac%.0f/shards%d", 100*frac, shards), func(t *testing.T) {
					resumeAt(t, frac, func() {
						withShards(t, shards, func() {
							e, err := core.ByID(id)
							if err != nil {
								t.Fatal(err)
							}
							tbl, err := e.Run(true)
							if err != nil {
								t.Fatal(err)
							}
							if got := tbl.Format(); got != want {
								t.Errorf("resume at %.0f%%, shards=%d: %s diverged from straight-through golden\n--- want ---\n%s--- got ---\n%s",
									100*frac, shards, id, want, got)
							}
						})
					})
				})
			}
		})
	}
}

// TestResumedBatchingGolden interrupts E1 mid-run with sharding and a
// tiny epoch cap (3 cycles): the checkpoint must land on the exact
// requested cycle even when that cycle falls mid-epoch (the fold loop
// re-checks the budget between folded cycles, so a snapshot horizon
// never overshoots), and the resumed run must still reproduce the
// committed golden bytes. The resumes under the default cap are covered
// by TestResumedGoldenExperiments, where sharded runs batch by default.
func TestResumedBatchingGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("resumed batching goldens are not -short")
	}
	want := readGolden(t, "golden_e1_quick.txt")
	for _, frac := range []float64{0.37, 0.50} {
		frac := frac
		t.Run(fmt.Sprintf("frac%.0f", 100*frac), func(t *testing.T) {
			resumeAt(t, frac, func() {
				withBatching(t, 3, func() {
					withShards(t, 2, func() {
						e, err := core.ByID("E1")
						if err != nil {
							t.Fatal(err)
						}
						tbl, err := e.Run(true)
						if err != nil {
							t.Fatal(err)
						}
						if got := tbl.Format(); got != want {
							t.Errorf("resume at %.0f%% with tiny epochs diverged from golden\n--- want ---\n%s--- got ---\n%s",
								100*frac, want, got)
						}
					})
				})
			})
		})
	}
}

// TestResumedGoldenSweep interrupts the golden load-latency sweep
// mid-point and requires the committed CSV bytes.
func TestResumedGoldenSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("resumed golden sweeps are not -short")
	}
	want := readGolden(t, "golden_sweep_seed1.csv")
	for _, frac := range []float64{0.25, 0.75} {
		resumeAt(t, frac, func() {
			if got := goldenSweepCSV(t, 1); got != want {
				t.Errorf("resume at %.0f%%: sweep diverged from straight-through golden", 100*frac)
			}
		})
	}
}
