package noc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/flit"
	"repro/internal/network"
	"repro/internal/router"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Campaign-engine benchmarks: what a sweep point costs to set up and run.
// BenchmarkNetworkBuild4096 is the price of a cold construction at the
// 4096-tile scale; BenchmarkSweepPointReuse is the pooled alternative — an
// in-place Reset of an already-built network, which must stay at 0
// allocs/op (gated in `make ci` via benchjson, same as the cycle loop).
// The SweepThroughput pair records campaign throughput in measurements per
// second with and without warm forks, so BENCH_cycles.json carries the
// amortization factor the campaign engine was built for.

// BenchmarkNetworkBuild4096 measures the full cold build of a 64x64
// (4096-tile) folded torus: topology, routers, links, ports, shard
// partition, phase schedule. This is the per-point cost the arena pool
// deletes; BenchmarkSweepPointReuse is the replacement.
func BenchmarkNetworkBuild4096(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		topo, err := topology.NewFoldedTorus(64, 64)
		if err != nil {
			b.Fatal(err)
		}
		n, err := network.New(network.Config{Topo: topo, Router: router.DefaultConfig(0), Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if n.Kernel().Now() != 0 {
			b.Fatal("fresh network not at cycle 0")
		}
	}
}

// BenchmarkSweepPointReuse measures the pooled re-initialization path: an
// in-place Reset of a built, traffic-warmed 16x16 network — exactly what
// the core arena does between sweep points. The contract is steady-state
// 0 allocs/op: every buffer, worklist, and histogram is recycled, never
// reallocated. The first Reset after live traffic is taken before the
// timer so the loop measures the steady state, and `make ci` gates the
// alloc count through benchjson (an allocation appearing in a previously
// allocation-free benchmark fails outright).
func BenchmarkSweepPointReuse(b *testing.B) {
	topo, err := topology.NewFoldedTorus(16, 16)
	if err != nil {
		b.Fatal(err)
	}
	n, err := network.New(network.Config{Topo: topo, Router: router.DefaultConfig(0), Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for tile := 0; tile < topo.NumTiles(); tile++ {
		n.AttachClient(tile, traffic.NewGenerator(tile, traffic.Uniform{Tiles: topo.NumTiles()}, 0.3, 2, flit.VCMask(0xFF), 1))
	}
	n.Run(2000) // leave real in-flight state for the first Reset to recycle
	if err := n.Reset(1, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.Reset(1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// sweepBenchParams is the representative multi-load campaign both
// SweepThroughput benchmarks run: a 16x16 torus with a long deterministic
// warmup (1500 cycles) ahead of a short measurement window (500 cycles) —
// the regime where replicated measurements dominate a campaign and the
// warm fork pays: the cold path simulates warmup+measure per measurement
// (2000 cycles), the warm path simulates the warmup once per load point
// and forks it per replica (1500 + 8x500 = 5500 cycles for 8
// measurements).
func sweepBenchParams() core.RunParams {
	p := core.DefaultRunParams()
	p.K = 16
	p.FlitsPerPacket = 2
	p.WarmupCycles = 1500
	p.MeasureCycles = 500
	return p
}

var sweepBenchRates = []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3}

const sweepBenchReplicas = 8

// BenchmarkSweepThroughput runs the representative campaign through the
// warm-fork engine (SweepReplicated) and reports measurements per second
// as "points/sec" — the campaign engine's headline metric, regression-
// gated by benchjson alongside ns/op.
func BenchmarkSweepThroughput(b *testing.B) {
	core.DrainArena()
	p := sweepBenchParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := core.SweepReplicated(p, sweepBenchRates, sweepBenchReplicas)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != len(sweepBenchRates) {
			b.Fatalf("got %d points, want %d", len(pts), len(sweepBenchRates))
		}
	}
	meas := float64(b.N * len(sweepBenchRates) * sweepBenchReplicas)
	b.ReportMetric(meas/b.Elapsed().Seconds(), "points/sec")
}

// BenchmarkSweepThroughputCold is the same campaign — identical topology,
// load points, and measurement count — with every measurement paying its
// own warmup, the pre-fork semantics (plain Sweep over the expanded rate
// list). The warm/cold points-per-second ratio in BENCH_cycles.json is
// the recorded amortization factor.
func BenchmarkSweepThroughputCold(b *testing.B) {
	core.DrainArena()
	p := sweepBenchParams()
	rates := make([]float64, 0, len(sweepBenchRates)*sweepBenchReplicas)
	for _, r := range sweepBenchRates {
		for i := 0; i < sweepBenchReplicas; i++ {
			rates = append(rates, r)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := core.Sweep(p, rates)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != len(rates) {
			b.Fatalf("got %d points, want %d", len(pts), len(rates))
		}
	}
	b.ReportMetric(float64(b.N*len(rates))/b.Elapsed().Seconds(), "points/sec")
}
