package noc

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// The golden determinism suite pins the simulation engine's observable
// output: experiment tables and sweep CSVs captured from the pre-
// optimization ("seed") engine. Any engine change — flit pooling, route
// caching, active-set skips, parallel sweep execution — must reproduce
// these bytes exactly for the same seeds, or it changed behaviour, not
// just speed. Regenerate deliberately with `go test -run Golden -update`.

var update = flag.Bool("update", false, "rewrite golden files from the current engine")

// goldenSweepCSV renders a load-latency sweep in cmd/nocsweep's CSV format.
func goldenSweepCSV(t *testing.T, seed int64) string {
	t.Helper()
	base := core.DefaultRunParams()
	base.WarmupCycles = 500
	base.MeasureCycles = 1500
	base.FlitsPerPacket = 2
	base.Seed = seed
	points, err := core.Sweep(base, []float64{0.1, 0.3, 0.5, 0.7, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("offered,accepted,avg_latency,p50,p99,max,util_mean,util_max\n")
	for _, pt := range points {
		r := pt.Result
		fmt.Fprintf(&sb, "%.3f,%.4f,%.2f,%d,%d,%d,%.4f,%.4f\n",
			pt.Rate, r.AcceptedFlits, r.AvgLatency, r.P50Latency, r.P99Latency,
			r.MaxLatency, r.LinkUtilMean, r.LinkUtilMax)
	}
	return sb.String()
}

// checkGolden compares got against testdata/name, rewriting it under
// -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if string(want) != got {
		t.Errorf("%s: output diverged from the seed engine\n--- want ---\n%s\n--- got ---\n%s",
			name, want, got)
	}
}

// TestGoldenSweep pins the full load-latency sweep (the core.Sweep path the
// parallel runner fans out) for three seeds.
func TestGoldenSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweeps are not -short")
	}
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			checkGolden(t, fmt.Sprintf("golden_sweep_seed%d.csv", seed), goldenSweepCSV(t, seed))
		})
	}
}

// TestGoldenExperiments pins the E1, E4, and E20 quick-mode tables: the
// baseline network, the mesh-vs-torus load sweep, and the chaos campaign
// (whose fault detection cycles and reroute counts are extremely sensitive
// to any change in simulation order).
func TestGoldenExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("golden experiments are not -short")
	}
	for _, id := range []string{"E1", "E4", "E20"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, err := core.ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			tbl, err := e.Run(true)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, fmt.Sprintf("golden_%s_quick.txt", strings.ToLower(id)), tbl.Format())
		})
	}
}
