package noc

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/flit"
	"repro/internal/network"
	"repro/internal/router"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// The golden determinism suite pins the simulation engine's observable
// output: experiment tables and sweep CSVs captured from the pre-
// optimization ("seed") engine. Any engine change — flit pooling, route
// caching, active-set skips, parallel sweep execution — must reproduce
// these bytes exactly for the same seeds, or it changed behaviour, not
// just speed. Regenerate deliberately with `go test -run Golden -update`.

var update = flag.Bool("update", false, "rewrite golden files from the current engine")

// goldenSweepCSV renders a load-latency sweep in cmd/nocsweep's CSV format.
func goldenSweepCSV(t *testing.T, seed int64) string {
	t.Helper()
	base := core.DefaultRunParams()
	base.WarmupCycles = 500
	base.MeasureCycles = 1500
	base.FlitsPerPacket = 2
	base.Seed = seed
	points, err := core.Sweep(base, []float64{0.1, 0.3, 0.5, 0.7, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("offered,accepted,avg_latency,p50,p99,max,util_mean,util_max\n")
	for _, pt := range points {
		r := pt.Result
		fmt.Fprintf(&sb, "%.3f,%.4f,%.2f,%d,%d,%d,%.4f,%.4f\n",
			pt.Rate, r.AcceptedFlits, r.AvgLatency, r.P50Latency, r.P99Latency,
			r.MaxLatency, r.LinkUtilMean, r.LinkUtilMax)
	}
	return sb.String()
}

// checkGolden compares got against testdata/name, rewriting it under
// -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if string(want) != got {
		t.Errorf("%s: output diverged from the seed engine\n--- want ---\n%s\n--- got ---\n%s",
			name, want, got)
	}
}

// TestGoldenSweep pins the full load-latency sweep (the core.Sweep path the
// parallel runner fans out) for three seeds.
func TestGoldenSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweeps are not -short")
	}
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			checkGolden(t, fmt.Sprintf("golden_sweep_seed%d.csv", seed), goldenSweepCSV(t, seed))
		})
	}
}

// goldenTelemetryProbe runs a small seeded 4x4 torus at light load with
// full telemetry (sampling + lifecycle tracing) and returns the drained
// probe. Light load and a short horizon keep the Chrome trace golden
// small while still exercising every event kind except faults.
func goldenTelemetryProbe(t *testing.T) *telemetry.Probe {
	t.Helper()
	probe := telemetry.New(telemetry.Config{SampleEvery: 20, Trace: true})
	topo, err := topology.NewFoldedTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := network.New(network.Config{Topo: topo, Router: router.DefaultConfig(0), Seed: 5, Probe: probe})
	if err != nil {
		t.Fatal(err)
	}
	for tile := 0; tile < topo.NumTiles(); tile++ {
		g := traffic.NewGenerator(tile, traffic.Uniform{Tiles: 16}, 0.05, 2, flit.VCMask(0xFF), 1)
		g.StopAt = 80
		n.AttachClient(tile, g)
	}
	n.Run(80)
	if !n.Drain(10000) {
		t.Fatal("golden telemetry run did not drain")
	}
	return probe
}

// TestGoldenTelemetry pins the telemetry exporters byte-for-byte: the
// metrics CSV (counters, per-VC occupancy, link totals, time series) and
// the Chrome trace-event JSON for every packet in a small seeded run.
// These are the formats external tools parse, so format drift is a break.
func TestGoldenTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("golden telemetry runs are not -short")
	}
	probe := goldenTelemetryProbe(t)
	var csv, trace strings.Builder
	if err := probe.WriteMetricsCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if err := probe.WriteChromeTrace(&trace); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_telemetry_metrics.csv", csv.String())
	checkGolden(t, "golden_telemetry_trace.json", trace.String())
}

// TestGoldenExperiments pins the E1, E4, and E20 quick-mode tables: the
// baseline network, the mesh-vs-torus load sweep, and the chaos campaign
// (whose fault detection cycles and reroute counts are extremely sensitive
// to any change in simulation order).
func TestGoldenExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("golden experiments are not -short")
	}
	for _, id := range []string{"E1", "E4", "E20"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, err := core.ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			tbl, err := e.Run(true)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, fmt.Sprintf("golden_%s_quick.txt", strings.ToLower(id)), tbl.Format())
		})
	}
}
