package noc

import (
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry/health"
)

// The SLO burn smoke test exercises the per-flow latency observatory end
// to end through real binaries: a nocsim run under the hotspot pattern
// with a tight objective must degrade /healthz with a burn-rate verdict
// that names the offending flow, its dominant stall cause, and the hot
// links on its path; the burn must trigger a flight-recorder dump; and a
// real nocpost binary's verdict on that dump must reconstruct the same
// SLO transition. `make ci` runs it alongside the serve smoke.

// healthzDoc mirrors the /healthz JSON shape the smoke test reads.
type healthzDoc struct {
	Status   string           `json:"status"`
	Cycle    int64            `json:"cycle"`
	Verdicts []health.Verdict `json:"verdicts"`
}

func TestSLOBurnSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test is not -short")
	}
	bin := buildNocsim(t)
	dumpDir := t.TempDir()

	// Hotspot traffic at 40% load saturates the central tile, so every
	// flow into it blows a 20-cycle p99 within the first burn windows.
	cmd := exec.Command(bin,
		"-serve", "127.0.0.1:0",
		"-k", "4", "-pattern", "hotspot", "-rate", "0.4",
		"-warmup", "100", "-measure", "100000000",
		"-flows", "pair", "-slo", "p99<=20@flows",
		"-flightrec", "-flightrec-dir", dumpDir,
	)
	addr := serveAddr(t, cmd)
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// Poll /healthz until the SLO engine fires (burn windows need a few
	// evaluation ticks to fill).
	var doc healthzDoc
	var burn *health.Verdict
	deadline := time.Now().Add(30 * time.Second)
	for burn == nil {
		if time.Now().After(deadline) {
			t.Fatalf("no slo verdict fired; last /healthz: %+v", doc)
		}
		// A burning run answers 503 by design — the endpoint degrades —
		// so poll without getOK's 200 filter.
		resp, err := http.Get("http://" + addr + "/healthz")
		if err != nil {
			time.Sleep(100 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
			resp.Body.Close()
			t.Fatalf("/healthz status %d", resp.StatusCode)
		}
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			// The first samples can race server startup; keep polling.
			time.Sleep(100 * time.Millisecond)
			continue
		}
		for i := range doc.Verdicts {
			v := &doc.Verdicts[i]
			if v.Detector == "slo" && !v.Healthy {
				burn = v
				break
			}
		}
		if burn == nil {
			time.Sleep(100 * time.Millisecond)
		}
	}
	if doc.Status != "unhealthy" {
		t.Errorf("/healthz status = %q with a burning slo verdict", doc.Status)
	}

	// The attribution must name the offending flow into the hot tile
	// (tile 10 on the 4x4 die), the dominant stall cause, the hottest
	// links on the flow's path, and exemplar packets for nocpost.
	detail := burn.Detail
	for _, needle := range []string{
		"->10", "p99<=20", "burn", "T/T0", "zero-load",
		"dominant stall", "hottest path links", "exemplar pkts",
	} {
		if !strings.Contains(detail, needle) {
			t.Errorf("slo attribution lacks %q:\n%s", needle, detail)
		}
	}

	// The burn queued a flight-recorder dump tagged with the flow.
	var dump string
	for time.Now().Before(deadline) && dump == "" {
		matches, err := filepath.Glob(filepath.Join(dumpDir, "*slo-burn-*.frec"))
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) > 0 {
			dump = matches[0]
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if dump == "" {
		ents, _ := os.ReadDir(dumpDir)
		t.Fatalf("no slo-burn flight-recorder dump appeared; dir holds %v", ents)
	}
	cmd.Process.Kill()
	cmd.Wait()

	// nocpost time-travels the dump: its verdict must replay the recorded
	// SLO transition with the same attribution vocabulary.
	nocpost := filepath.Join(t.TempDir(), "nocpost")
	if out, err := exec.Command("go", "build", "-o", nocpost, "./cmd/nocpost").CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/nocpost: %v\n%s", err, out)
	}
	out, err := exec.Command(nocpost, "verdict", dump).CombinedOutput()
	if err != nil {
		t.Fatalf("nocpost verdict %s: %v\n%s", dump, err, out)
	}
	verdict := string(out)
	for _, needle := range []string{"slo-burn-", "slo", "p99<=20", "dominant stall"} {
		if !strings.Contains(verdict, needle) {
			t.Errorf("nocpost verdict lacks %q:\n%s", needle, verdict)
		}
	}
}

// TestSLOFlagValidation extends the CLI validation smoke to the flow
// flags: objectives and outputs without -flows are hard errors, as is an
// unknown classification or a malformed objective.
func TestSLOFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test is not -short")
	}
	bin := buildNocsim(t)
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"slo without flows", []string{"-slo", "p99<=40"}, "-slo requires -flows"},
		{"flows-out without flows", []string{"-flows-out", "f.csv"}, "-flows-out requires -flows"},
		{"unknown flow mode", []string{"-flows", "bogus"}, "-flows must be one of"},
		{"malformed objective", []string{"-flows", "pair", "-slo", "p98<=40"}, "-slo:"},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bin, tc.args...).CombinedOutput()
			if err == nil {
				t.Fatalf("nocsim %v exited 0; want validation failure", tc.args)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Fatalf("nocsim %v output lacks %q:\n%s", tc.args, tc.want, out)
			}
		})
	}
}
