// Command tracegen synthesizes *input traffic* traces in the nocsim trace
// format — one "cycle src dst bytes class" line per packet injection —
// for replay with `nocsim -trace`. This is the workload fed INTO the
// simulator.
//
// It is unrelated to the *execution* trace the simulator writes OUT with
// `-tracefile-out`: that file is Chrome trace-event JSON recording what
// happened to each packet (inject, route, arbitrate, traverse, eject),
// produced by internal/telemetry and viewed in chrome://tracing or
// Perfetto. The README's "Observability" section documents both formats
// side by side.
//
//	tracegen -k 4 -cycles 1000 -rate 0.2 -pattern uniform > uniform.trace
//	nocsim -trace uniform.trace -heatmap -metrics -tracefile-out exec.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/traffic"
)

func main() {
	var (
		k       = flag.Int("k", 4, "radix (k x k tiles)")
		cycles  = flag.Int64("cycles", 1000, "trace horizon in cycles")
		rate    = flag.Float64("rate", 0.1, "packets per cycle per tile")
		pattern = flag.String("pattern", "uniform", "traffic pattern")
		nbytes  = flag.Int("bytes", 32, "payload bytes per packet")
		class   = flag.Int("class", 0, "service class")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	p, err := traffic.ByName(*pattern, *k, *k)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	rng := rand.New(rand.NewSource(*seed))
	tiles := *k * *k
	var events []traffic.Event
	for cycle := int64(0); cycle < *cycles; cycle++ {
		for src := 0; src < tiles; src++ {
			if rng.Float64() >= *rate {
				continue
			}
			dst := p.Pick(src, rng)
			if dst == src {
				continue
			}
			events = append(events, traffic.Event{
				Cycle: cycle, Src: src, Dst: dst, Bytes: *nbytes, Class: *class,
			})
		}
	}
	if err := traffic.WriteTrace(os.Stdout, events); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
