package obs

import (
	"strings"
	"testing"
)

// TestValidate pins the flag-consistency contract shared by every command:
// output files whose collection flag is missing are an error at parse
// time, not a silently empty artifact after a long run.
func TestValidate(t *testing.T) {
	for _, tc := range []struct {
		name    string
		f       Flags
		wantErr string
	}{
		{"zero value", Flags{}, ""},
		{"metrics alone", Flags{Metrics: true}, ""},
		{"metrics with every", Flags{Metrics: true, MetricsEvery: 100}, ""},
		{"serve alone", Flags{Serve: "127.0.0.1:0"}, ""},
		{"metrics-out with metrics", Flags{Metrics: true, MetricsOut: "m.csv"}, ""},
		{"trace-out with metrics", Flags{Metrics: true, TraceOut: "t.json"}, ""},
		{"negative every", Flags{Metrics: true, MetricsEvery: -1}, "-metrics-every must be >= 0"},
		{"metrics-out without metrics", Flags{MetricsOut: "m.csv"}, "-metrics-out requires -metrics"},
		{"trace-out without metrics", Flags{TraceOut: "t.json"}, "-tracefile-out requires -metrics"},
		{"trace-out with serve only", Flags{Serve: ":0", TraceOut: "t.json"}, "-tracefile-out requires -metrics"},
		{"flightrec alone", Flags{FlightRec: true}, ""},
		{"flightrec with cycles", Flags{FlightRec: true, FlightRecCycles: 8192}, ""},
		{"flightrec with dir", Flags{FlightRec: true, FlightRecDir: "dumps"}, ""},
		{"flightrec-cycles without flightrec", Flags{FlightRecCycles: 8192}, "-flightrec-cycles requires -flightrec"},
		{"flightrec-dir without flightrec", Flags{FlightRecDir: "dumps"}, "-flightrec-dir requires -flightrec"},
		{"negative flightrec-cycles", Flags{FlightRec: true, FlightRecCycles: -1}, "-flightrec-cycles must be >= 0"},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := tc.f.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestEnabled pins which flags imply a telemetry probe: any of them except
// -pprof, which profiles the probe-less fast path.
func TestEnabled(t *testing.T) {
	if (&Flags{}).Enabled() {
		t.Error("zero flags report Enabled")
	}
	if (&Flags{Pprof: "cpu.out"}).Enabled() {
		t.Error("-pprof alone must not attach a probe")
	}
	for _, f := range []Flags{
		{Metrics: true},
		{MetricsEvery: 10},
		{MetricsOut: "m.csv"},
		{TraceOut: "t.json"},
		{Serve: ":0"},
		{FlightRec: true},
	} {
		if !f.Enabled() {
			t.Errorf("%+v does not report Enabled", f)
		}
	}
	if p := (&Flags{}).NewProbe(); p != nil {
		t.Error("disabled flags built a probe; the zero-overhead path is lost")
	}
	if p := (&Flags{Serve: ":0"}).NewProbe(); p == nil {
		t.Error("-serve did not build a probe")
	}
}
