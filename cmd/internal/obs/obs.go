// Package obs wires the shared observability flags (-metrics,
// -metrics-every, -metrics-out, -tracefile-out, -serve, -flightrec,
// -pprof) into the command binaries: it builds the telemetry probe the
// flags ask for, attaches the live observability service and the flight
// recorder, starts and stops CPU profiling, and exports the collected
// artifacts after a run.
package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime/pprof"
	"syscall"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/telemetry"
	"repro/internal/telemetry/flightrec"
	"repro/internal/telemetry/latency"
	"repro/internal/telemetry/serve"
)

// Flags holds the parsed observability options.
type Flags struct {
	Metrics      bool
	MetricsEvery int64
	MetricsOut   string
	TraceOut     string
	Serve        string
	Pprof        string

	FlightRec       bool
	FlightRecCycles int
	FlightRecDir    string

	Flows    string
	SLO      string
	FlowsOut string

	// flowObs is the observatory AttachFlows built, threaded into the
	// serve collector and the flight recorder by the later attach calls.
	flowObs *latency.Observatory
}

// Register installs the observability flags on the default flag set.
func Register() *Flags {
	f := &Flags{}
	flag.BoolVar(&f.Metrics, "metrics", false, "attach telemetry probes and print the metrics table after the run")
	flag.Int64Var(&f.MetricsEvery, "metrics-every", 0, "telemetry time-series sampling interval, cycles (0 disables the series)")
	flag.StringVar(&f.MetricsOut, "metrics-out", "", "write per-component telemetry counters and the sampled series as CSV to this file (requires -metrics)")
	flag.StringVar(&f.TraceOut, "tracefile-out", "", "record per-packet lifecycle events and write Chrome trace-event JSON (chrome://tracing) to this file (requires -metrics)")
	flag.StringVar(&f.Serve, "serve", "", "serve live observability over HTTP on this address for the duration of the run (/metrics, /snapshot, /healthz, /events, /debug/flightrec); e.g. :8080 or 127.0.0.1:0")
	flag.StringVar(&f.Pprof, "pprof", "", "write a CPU profile of the run to this file")
	flag.BoolVar(&f.FlightRec, "flightrec", false, "attach the flight recorder: a ring of per-cycle event deltas plus periodic keyframes, dumped for nocpost when a health detector fires, on SIGQUIT, on panic, or via /debug/flightrec")
	flag.IntVar(&f.FlightRecCycles, "flightrec-cycles", 0, fmt.Sprintf("flight-recorder ring capacity in cycles (default %d; requires -flightrec)", flightrec.DefaultWindow))
	flag.StringVar(&f.FlightRecDir, "flightrec-dir", "", "directory flight-recorder dumps are written to (default .; requires -flightrec)")
	flag.StringVar(&f.Flows, "flows", "", "attach the per-flow latency observatory with this flow classification: pair, srcrow, srccol, or class")
	flag.StringVar(&f.SLO, "slo", "", "';'-separated per-flow latency objectives with multi-window burn-rate alerting, e.g. \"p99<=40@flows\" (requires -flows)")
	flag.StringVar(&f.FlowsOut, "flows-out", "", "write the per-flow latency decomposition CSV to this file after the run (requires -flows)")
	return f
}

// Enabled reports whether any flag requires a telemetry probe.
func (f *Flags) Enabled() bool {
	return f.Metrics || f.MetricsEvery > 0 || f.MetricsOut != "" || f.TraceOut != "" || f.Serve != "" || f.FlightRec || f.Flows != ""
}

// Validate rejects inconsistent observability flags, mirroring the strict
// validation the commands apply to their fault flags: output files
// without the flag that enables their collection are an error, not a
// silent no-op.
func (f *Flags) Validate() error {
	if f.MetricsEvery < 0 {
		return fmt.Errorf("-metrics-every must be >= 0 (got %d)", f.MetricsEvery)
	}
	if f.MetricsOut != "" && !f.Metrics {
		return fmt.Errorf("-metrics-out requires -metrics")
	}
	if f.TraceOut != "" && !f.Metrics {
		return fmt.Errorf("-tracefile-out requires -metrics")
	}
	if f.FlightRecCycles != 0 && !f.FlightRec {
		return fmt.Errorf("-flightrec-cycles requires -flightrec")
	}
	if f.FlightRecCycles < 0 {
		return fmt.Errorf("-flightrec-cycles must be >= 0 (got %d)", f.FlightRecCycles)
	}
	if f.FlightRecDir != "" && !f.FlightRec {
		return fmt.Errorf("-flightrec-dir requires -flightrec")
	}
	if f.SLO != "" && f.Flows == "" {
		return fmt.Errorf("-slo requires -flows")
	}
	if f.FlowsOut != "" && f.Flows == "" {
		return fmt.Errorf("-flows-out requires -flows")
	}
	switch f.Flows {
	case "", latency.FlowPair, latency.FlowSrcRow, latency.FlowSrcCol, latency.FlowClass:
	default:
		return fmt.Errorf("-flows must be one of %s, %s, %s, %s (got %q)",
			latency.FlowPair, latency.FlowSrcRow, latency.FlowSrcCol, latency.FlowClass, f.Flows)
	}
	if _, err := latency.ParseSLO(f.SLO); err != nil {
		return fmt.Errorf("-slo: %v", err)
	}
	return nil
}

// AttachFlows attaches the per-flow latency observatory the -flows/-slo
// flags ask for (no-op without -flows). Call it before AttachServe (so
// /snapshot and /healthz carry the observatory's flows and SLO
// verdicts) and before AttachFlightRec (so an SLO burn can trigger a
// dump); both pick the observatory up from the flags.
func (f *Flags) AttachFlows(n *network.Network) (*latency.Observatory, error) {
	if f.Flows == "" {
		return nil, nil
	}
	o, err := latency.Attach(n, latency.Config{Flows: f.Flows, SLO: f.SLO})
	if err != nil {
		return nil, err
	}
	f.flowObs = o
	return o, nil
}

// AttachServe starts the live observability service on the -serve address
// (no-op without the flag) and logs the resolved address to stderr. The
// caller must Close the returned server when the run ends, and must call
// AttachServe before the network's first cycle.
func (f *Flags) AttachServe(n *network.Network) (*serve.Server, error) {
	if f.Serve == "" {
		return nil, nil
	}
	cfg := serve.Config{Flows: f.flowObs}
	if f.MetricsEvery > 0 {
		cfg.Every = f.MetricsEvery
	}
	s, err := serve.Start(n, cfg, f.Serve)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "serving live observability on http://%s\n", s.Addr())
	return s, nil
}

// AttachFlightRec attaches the flight recorder the -flightrec flags ask
// for (no-op without -flightrec): the recorder's serial ring/keyframe
// phase on the network's kernel, the kernel crash hook for dump-on-panic,
// a SIGQUIT handler for dump-on-demand from the terminal, and — when the
// live service is up — the /debug/flightrec endpoint. kind, specJSON, and
// hash identify the run for replay (core.SpecForRun / core.ConfigHash).
// The returned stop function releases the signal handler; call it when
// the run ends. Must be called before the network's first cycle.
func (f *Flags) AttachFlightRec(n *network.Network, srv *serve.Server, kind string, specJSON []byte, hash uint64) (*flightrec.Recorder, func(), error) {
	if !f.FlightRec {
		return nil, func() {}, nil
	}
	rec, err := flightrec.Attach(n, flightrec.Config{
		Window:     f.FlightRecCycles,
		Dir:        f.FlightRecDir,
		ConfigHash: hash,
		SpecJSON:   specJSON,
		SpecKind:   kind,
	})
	if err != nil {
		return nil, nil, err
	}
	if srv != nil {
		srv.SetDumper(rec)
	}
	if f.flowObs != nil {
		// SLO burns land in the recorder's health log and trigger dumps
		// whose window includes the burn cycle.
		f.flowObs.SetBurnSink(rec)
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGQUIT)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			case <-sigc:
				if path, err := rec.TriggerDump("sigquit"); err != nil {
					fmt.Fprintf(os.Stderr, "flightrec: SIGQUIT dump failed: %v\n", err)
				} else {
					fmt.Fprintf(os.Stderr, "flightrec: dump written to %s\n", path)
				}
			}
		}
	}()
	stop := func() {
		signal.Stop(sigc)
		close(done)
	}
	return rec, stop, nil
}

// AttachFlightRecRun is AttachFlightRec for a plain core.Run: it derives
// the replayable spec and config hash from the run parameters the same
// way core stamps its own checkpoints.
func (f *Flags) AttachFlightRecRun(n *network.Network, srv *serve.Server, p core.RunParams) (*flightrec.Recorder, func(), error) {
	if !f.FlightRec {
		return nil, func() {}, nil
	}
	spec, err := core.SpecForRun("run", p).JSON()
	if err != nil {
		return nil, nil, err
	}
	return f.AttachFlightRec(n, srv, "run", spec, core.ConfigHash("run", p, ""))
}

// ReportFlightRec logs where a recorder's dumps went (and any write
// error) after a run; a nil recorder is a no-op.
func ReportFlightRec(w io.Writer, rec *flightrec.Recorder) {
	if rec == nil {
		return
	}
	if err := rec.Err(); err != nil {
		fmt.Fprintf(w, "flightrec: dump error: %v\n", err)
	}
	for _, p := range rec.Dumps() {
		fmt.Fprintf(w, "flightrec: dump written to %s\n", p)
	}
}

// HeatmapProbe returns a counters-only probe (no series, no tracing) for
// commands that want the telemetry heatmap without the other flags.
func HeatmapProbe() *telemetry.Probe { return telemetry.New(telemetry.Config{}) }

// NewProbe builds the probe the flags describe, or nil when telemetry is
// off (the network's zero-overhead path).
func (f *Flags) NewProbe() *telemetry.Probe {
	if !f.Enabled() {
		return nil
	}
	return telemetry.New(telemetry.Config{
		SampleEvery: f.MetricsEvery,
		Trace:       f.TraceOut != "",
	})
}

// StartPprof begins CPU profiling when -pprof was given. The returned stop
// function is safe to call unconditionally.
func (f *Flags) StartPprof() (stop func(), err error) {
	if f.Pprof == "" {
		return func() {}, nil
	}
	out, err := os.Create(f.Pprof)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(out); err != nil {
		out.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		out.Close()
	}, nil
}

// Emit writes every artifact the flags asked for from the collected probe:
// the text table and optional heatmap to w, the CSV metrics and the Chrome
// trace to their files. A nil probe is a no-op. Commands whose stdout is
// machine-readable (nocsweep's CSV) pass stderr as w.
func (f *Flags) Emit(w io.Writer, p *telemetry.Probe, heatmap bool) error {
	if f.FlowsOut != "" && f.flowObs != nil {
		out, err := os.Create(f.FlowsOut)
		if err != nil {
			return err
		}
		if err := f.flowObs.WriteCSV(out); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "per-flow latency written to %s\n", f.FlowsOut)
	}
	if p == nil {
		return nil
	}
	if f.Metrics {
		fmt.Fprint(w, p.MetricsTable())
	}
	if heatmap {
		fmt.Fprint(w, p.Heatmap())
	}
	if f.MetricsOut != "" {
		out, err := os.Create(f.MetricsOut)
		if err != nil {
			return err
		}
		if err := p.WriteMetricsCSV(out); err != nil {
			out.Close()
			return err
		}
		if f.flowObs != nil {
			if err := f.flowObs.WriteCSV(out); err != nil {
				out.Close()
				return err
			}
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "telemetry metrics written to %s\n", f.MetricsOut)
	}
	if f.TraceOut != "" {
		out, err := os.Create(f.TraceOut)
		if err != nil {
			return err
		}
		if err := p.WriteChromeTrace(out); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "execution trace written to %s (load in chrome://tracing)\n", f.TraceOut)
	}
	return nil
}
