// Command nocbench regenerates the paper-reproduction experiments E1–E20
// (see DESIGN.md for the index). Each experiment prints the paper's claim
// next to the measured value.
//
//	nocbench              # run everything
//	nocbench -run E3      # one experiment
//	nocbench -quick       # shorter measurement windows
//	nocbench -markdown    # emit Markdown (the source of EXPERIMENTS.md)
//	nocbench -parallel 8  # worker-pool width (0 = GOMAXPROCS)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/cmd/internal/obs"
	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/telemetry/flightrec"
	"repro/internal/telemetry/serve"
)

func main() {
	var (
		runID    = flag.String("run", "", "run a single experiment (E1..E20)")
		quick    = flag.Bool("quick", false, "shorter measurement windows")
		markdown = flag.Bool("markdown", false, "emit Markdown tables")
		par      = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
		shards   = flag.Int("shards", 1, "intra-cycle shards per simulation, identical results (0 = GOMAXPROCS, 1 = sequential); composes with -parallel")
		batch    = flag.Int("batch-epochs", 0, "max cycles folded into one barrier epoch while near-quiescent, sharded runs only (0 = default 64, -1 disables); identical results")

		ckptEvery = flag.Int64("checkpoint-every", 0, "unsupported here: nocbench checkpoints at experiment granularity")
		ckptDir   = flag.String("checkpoint-dir", "", "directory for the experiment progress file (completed tables are cached)")
		resume    = flag.Bool("resume", false, "skip experiments already completed per -checkpoint-dir's progress file")
	)
	obsFlags := obs.Register()
	flag.Parse()
	if err := obsFlags.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "nocbench:", err)
		os.Exit(1)
	}
	core.SetParallelism(*par)
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "nocbench: -shards must be >= 0 (0 = GOMAXPROCS); got %d\n", *shards)
		os.Exit(1)
	}
	core.SetShards(*shards)
	core.SetBatchEpochs(*batch)
	if *ckptEvery != 0 {
		fmt.Fprintln(os.Stderr, "nocbench: -checkpoint-every is not supported: experiments own their"+
			" measurement windows, so nocbench checkpoints at experiment granularity"+
			" (-checkpoint-dir/-resume); for cycle-level checkpoints use nocsim or nocsweep")
		os.Exit(1)
	}
	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "nocbench: -resume needs -checkpoint-dir")
		os.Exit(1)
	}
	var prog *progress
	if *ckptDir != "" {
		p, err := openProgress(*ckptDir, *resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nocbench:", err)
			os.Exit(1)
		}
		prog = p
	}

	stopProf, err := obsFlags.StartPprof()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nocbench:", err)
		os.Exit(1)
	}
	defer stopProf()

	experiments := core.All()
	if *runID != "" {
		e, err := core.ByID(*runID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nocbench:", err)
			os.Exit(1)
		}
		experiments = []core.Experiment{e}
	}
	start := time.Now()
	// Experiments run concurrently (each fans its own simulations across
	// the same pool); tables are collected per index and printed in the
	// E1..E20 order regardless of completion order.
	tables := make([]*core.Table, len(experiments))
	errs := make([]error, len(experiments))
	_ = sim.ForEach(len(experiments), core.Parallelism(), func(i int) error {
		if prog != nil {
			if t := prog.lookup(experiments[i].ID, *quick); t != nil {
				tables[i] = t
				return nil
			}
		}
		tables[i], errs[i] = experiments[i].Run(*quick)
		if prog != nil && errs[i] == nil {
			if err := prog.record(experiments[i].ID, *quick, tables[i]); err != nil {
				fmt.Fprintln(os.Stderr, "nocbench: progress:", err)
			}
		}
		return nil
	})
	failed := 0
	for i, e := range experiments {
		if errs[i] != nil {
			fmt.Fprintf(os.Stderr, "nocbench: %s: %v\n", e.ID, errs[i])
			failed++
			continue
		}
		if *markdown {
			fmt.Print(tables[i].Markdown())
		} else {
			fmt.Println(tables[i].Format())
		}
	}
	elapsed := time.Since(start)
	cycles := core.SimulatedCycles()
	fmt.Fprintf(os.Stderr, "%d experiments in %.2fs wall clock, %d simulated cycles (%.2fM cycles/s)\n",
		len(experiments), elapsed.Seconds(), cycles, float64(cycles)/elapsed.Seconds()/1e6)
	if hits, misses := artifact.Stats(); hits+misses > 0 {
		fmt.Fprintf(os.Stderr, "artifact cache: %d hits, %d misses (route tables, topologies, adjacency shared across runs)\n", hits, misses)
	}

	// The experiments own their networks, so telemetry instruments one
	// extra run of the paper's baseline configuration.
	if obsFlags.Enabled() {
		inst := core.DefaultRunParams()
		inst.Rate = 0.3
		inst.Probe = obsFlags.NewProbe()
		var srv *serve.Server
		var frRec *flightrec.Recorder
		frStop := func() {}
		inst.OnNetwork = func(n *network.Network) error {
			if _, err := obsFlags.AttachFlows(n); err != nil {
				return err
			}
			s, err := obsFlags.AttachServe(n)
			if err != nil {
				return err
			}
			srv = s
			rec, stop, err := obsFlags.AttachFlightRecRun(n, srv, inst)
			if err != nil {
				return err
			}
			if rec != nil {
				frRec, frStop = rec, stop
			}
			return nil
		}
		if _, err := core.Run(inst); err != nil {
			fmt.Fprintln(os.Stderr, "nocbench: telemetry run:", err)
			os.Exit(1)
		}
		frStop()
		obs.ReportFlightRec(os.Stderr, frRec)
		if srv != nil {
			srv.Close()
		}
		fmt.Fprintf(os.Stderr, "telemetry run (baseline %s-%dx%d, rate %.2f):\n",
			inst.Topology, inst.K, inst.K, inst.Rate)
		if err := obsFlags.Emit(os.Stderr, inst.Probe, false); err != nil {
			fmt.Fprintln(os.Stderr, "nocbench:", err)
			os.Exit(1)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
