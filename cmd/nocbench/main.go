// Command nocbench regenerates the paper-reproduction experiments E1–E20
// (see DESIGN.md for the index). Each experiment prints the paper's claim
// next to the measured value.
//
//	nocbench              # run everything
//	nocbench -run E3      # one experiment
//	nocbench -quick       # shorter measurement windows
//	nocbench -markdown    # emit Markdown (the source of EXPERIMENTS.md)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	var (
		runID    = flag.String("run", "", "run a single experiment (E1..E20)")
		quick    = flag.Bool("quick", false, "shorter measurement windows")
		markdown = flag.Bool("markdown", false, "emit Markdown tables")
	)
	flag.Parse()

	experiments := core.All()
	if *runID != "" {
		e, err := core.ByID(*runID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nocbench:", err)
			os.Exit(1)
		}
		experiments = []core.Experiment{e}
	}
	failed := 0
	for _, e := range experiments {
		tbl, err := e.Run(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nocbench: %s: %v\n", e.ID, err)
			failed++
			continue
		}
		if *markdown {
			fmt.Print(tbl.Markdown())
		} else {
			fmt.Println(tbl.Format())
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
