package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/core"
)

// progress caches completed experiment tables under a checkpoint
// directory, so an interrupted nocbench run resumes by reprinting the
// finished experiments and running only the rest. Entries are keyed by
// experiment ID and the -quick flag, since quick windows measure
// different tables.
type progress struct {
	mu     sync.Mutex
	path   string
	tables map[string]*core.Table
}

func progressKey(id string, quick bool) string {
	if quick {
		return id + "/quick"
	}
	return id + "/full"
}

// openProgress prepares the progress file in dir. Without -resume, prior
// progress is ignored (and overwritten as experiments complete); with it,
// the cached tables are loaded. A torn or stale file is discarded with a
// warning, never fatal.
func openProgress(dir string, resume bool) (*progress, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	p := &progress{path: filepath.Join(dir, "PROGRESS.json"), tables: map[string]*core.Table{}}
	if !resume {
		return p, nil
	}
	b, err := os.ReadFile(p.path)
	if os.IsNotExist(err) {
		return p, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(b, &p.tables); err != nil {
		fmt.Fprintf(os.Stderr, "nocbench: ignoring unreadable progress file %s: %v\n", p.path, err)
		p.tables = map[string]*core.Table{}
	}
	return p, nil
}

func (p *progress) lookup(id string, quick bool) *core.Table {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tables[progressKey(id, quick)]
}

// record caches a completed table and rewrites the progress file via a
// temp-and-rename so a crash mid-write leaves the previous file intact.
func (p *progress) record(id string, quick bool, t *core.Table) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tables[progressKey(id, quick)] = t
	b, err := json.MarshalIndent(p.tables, "", "  ")
	if err != nil {
		return err
	}
	tmp := p.path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, p.path)
}
