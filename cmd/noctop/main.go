// Command noctop is a live terminal dashboard for a simulation serving
// the observability endpoints (`nocsim -serve :8080` and friends). It
// polls /snapshot and renders throughput and latency sparklines, the
// busiest channels, per-detector health, and the k×k utilization heatmap,
// redrawing in place with ANSI escapes.
//
//	nocsim -rate 0.30 -measure 2000000 -serve :8080 &
//	noctop -addr localhost:8080
//
// Flags: -addr (host:port), -every (poll interval), -links (top-N hot
// links), -once (single frame, no ANSI clearing — scriptable).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/telemetry/serve"
)

func main() {
	var (
		addr  = flag.String("addr", "localhost:8080", "host:port of a simulation started with -serve")
		every = flag.Duration("every", time.Second, "poll interval")
		links = flag.Int("links", 5, "busiest channels to show")
		once  = flag.Bool("once", false, "render a single frame and exit (no screen clearing)")
	)
	flag.Parse()
	if *links < 0 {
		fmt.Fprintln(os.Stderr, "noctop: -links must be >= 0")
		os.Exit(1)
	}

	url := "http://" + *addr + "/snapshot"
	client := &http.Client{Timeout: 5 * time.Second}
	d := &dash{links: *links}

	if *once {
		snap, err := fetch(client, url)
		if err != nil {
			fmt.Fprintln(os.Stderr, "noctop:", err)
			os.Exit(1)
		}
		d.observe(snap)
		fmt.Print(d.render(snap, *addr))
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	fmt.Print("\x1b[2J") // clear once; frames then repaint from home
	ticker := time.NewTicker(*every)
	defer ticker.Stop()
	failures := 0
	for {
		snap, err := fetch(client, url)
		if err != nil {
			failures++
			if failures >= 5 {
				fmt.Fprintf(os.Stderr, "\nnoctop: %v (simulation gone?)\n", err)
				os.Exit(1)
			}
		} else {
			failures = 0
			d.observe(snap)
			// Home the cursor and repaint; \x1b[K clears each stale line tail.
			fmt.Print("\x1b[H" + d.render(snap, *addr))
		}
		select {
		case <-sig:
			fmt.Println()
			return
		case <-ticker.C:
		}
	}
}

func fetch(client *http.Client, url string) (*serve.Snapshot, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	var snap serve.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("decoding %s: %v", url, err)
	}
	return &snap, nil
}

// dash accumulates the polled history behind the sparklines.
type dash struct {
	links     int
	lastCycle int64
	lastFlits int64
	tput      []float64 // delivered flits/cycle per poll window
	p99       []float64 // p99 packet latency per poll
}

const sparkWidth = 48

// flowRows caps the per-flow latency panel; the full set is always in
// /snapshot.
const flowRows = 8

func (d *dash) observe(s *serve.Snapshot) {
	if d.lastCycle > 0 && s.Cycle > d.lastCycle {
		d.tput = push(d.tput, float64(s.DeliveredFlits-d.lastFlits)/float64(s.Cycle-d.lastCycle))
	}
	d.lastCycle, d.lastFlits = s.Cycle, s.DeliveredFlits
	for _, ls := range s.Latency {
		if ls.Name == "packet" {
			for _, q := range ls.Quantiles {
				if q.Q == 0.99 {
					d.p99 = push(d.p99, float64(q.V))
				}
			}
		}
	}
}

func push(s []float64, v float64) []float64 {
	s = append(s, v)
	if len(s) > sparkWidth {
		s = s[len(s)-sparkWidth:]
	}
	return s
}

// spark renders values as a unicode sparkline scaled to their own max.
func spark(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	max := 0.0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var sb strings.Builder
	for _, v := range vals {
		i := 0
		if max > 0 {
			i = int(v / max * float64(len(ramp)-1))
		}
		sb.WriteRune(ramp[i])
	}
	return sb.String()
}

func (d *dash) render(s *serve.Snapshot, addr string) string {
	var sb strings.Builder
	line := func(format string, args ...any) {
		fmt.Fprintf(&sb, format, args...)
		sb.WriteString("\x1b[K\n")
	}
	banner := "\x1b[42;30m HEALTHY \x1b[0m"
	if !s.Healthy {
		banner = "\x1b[41;97m UNHEALTHY \x1b[0m"
	}
	line("noctop — %s  cycle %d  %s", addr, s.Cycle, banner)
	line("")
	line("throughput  %7.3f flits/cycle   %s", s.Throughput, spark(d.tput))
	p99 := int64(0)
	for _, ls := range s.Latency {
		if ls.Name == "packet" {
			for _, q := range ls.Quantiles {
				if q.Q == 0.99 {
					p99 = q.V
				}
			}
		}
	}
	line("p99 latency %7d cycles        %s", p99, spark(d.p99))
	line("packets     generated %d  delivered %d   flits buffered %d, on wires %d",
		s.Generated, s.DeliveredPackets, s.BufOcc, s.LinkInFlight)
	if s.DeadLinks > 0 || s.FaultsApplied > 0 || s.OverUnityLinks > 0 {
		line("faults      applied %d  dead links %d  over-unity links %d",
			s.FaultsApplied, s.DeadLinks, s.OverUnityLinks)
	}
	if s.CheckpointEvery > 0 {
		state := fmt.Sprintf("last at cycle %d, age %d (every %d)",
			s.LastCheckpointCycle, s.CheckpointAge, s.CheckpointEvery)
		if s.LastCheckpointCycle < 0 {
			state = fmt.Sprintf("none yet after %d cycles (every %d)", s.CheckpointAge, s.CheckpointEvery)
		}
		if s.CheckpointStale {
			state += "  \x1b[31mSTALE\x1b[0m"
		}
		line("checkpoint  %s", state)
	}
	line("")
	for _, v := range s.Health {
		mark := "\x1b[32mok\x1b[0m    "
		if !v.Healthy {
			mark = "\x1b[31mFIRING\x1b[0m"
		}
		detail := v.Detail
		if len(detail) > 100 {
			detail = detail[:97] + "..."
		}
		line("  %-11s %s %s", v.Detector, mark, detail)
	}
	if len(s.Flows) > 0 {
		line("")
		line("per-flow latency (T/T0 = network latency over the paper's zero-load bound):")
		for i, f := range s.Flows {
			if i >= flowRows {
				line("  ... %d more flows in /snapshot", len(s.Flows)-flowRows)
				break
			}
			mark := ""
			if f.Saturated {
				mark = "  \x1b[31mSAT\x1b[0m"
			}
			line("  %-11s %6d pkts  p99 %6d  max %6d  T/T0 %6.2f%s",
				f.Flow, f.Count, f.P99, f.MaxCycles, f.ContentionFactor, mark)
		}
	}
	if len(s.SLO) > 0 {
		line("")
		line("slo burns:")
		for _, b := range s.SLO {
			detail := b.Detail
			if len(detail) > 100 {
				detail = detail[:97] + "..."
			}
			line("  %-11s %-9s \x1b[31mburn %.1fx short / %.1fx long\x1b[0m  %d/%d bad since cycle %d",
				b.Flow, b.Objective, b.BurnShort, b.BurnLong, b.Bad, b.Count, b.Since)
		}
	}
	if d.links > 0 && len(s.HotLinks) > 0 {
		line("")
		line("hot links (flits this window):")
		for i, l := range s.HotLinks {
			if i >= d.links {
				break
			}
			line("  L%-3d %3d-%s->%-3d  %d", l.Index, l.From, l.Dir, l.To, l.Flits)
		}
	}
	if len(s.Heatmap) > 0 {
		line("")
		line("outgoing-channel duty factor:")
		for _, row := range s.Heatmap {
			var cells []string
			for _, v := range row {
				cells = append(cells, fmt.Sprintf("%3.0f%%", 100*v))
			}
			line("  %s", strings.Join(cells, "  "))
		}
	}
	return sb.String()
}
