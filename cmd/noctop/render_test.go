package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry/health"
	"repro/internal/telemetry/latency"
	"repro/internal/telemetry/serve"
)

var update = flag.Bool("update", false, "rewrite the golden frame")

// frameSnapshots is a fixed polling history that exercises every render
// branch: the UNHEALTHY banner, both sparklines, the faults line, a stale
// checkpoint, an ok and a FIRING detector (with a detail long enough to
// truncate), the per-flow latency panel with a saturated flow, a burning
// SLO row, the hot-link table capped at -links, and the heatmap.
func frameSnapshots() []*serve.Snapshot {
	packetLat := func(p99 int64) []serve.LatencySnap {
		return []serve.LatencySnap{{
			Name: "packet", Class: -1, Count: 900, Sum: 31500, Mean: 35,
			Quantiles: []serve.Quantile{{Q: 0.5, V: p99 / 2}, {Q: 0.99, V: p99}},
		}}
	}
	base := func(cycle, flits, p99 int64) *serve.Snapshot {
		return &serve.Snapshot{
			Cycle:            cycle,
			Healthy:          true,
			Generated:        cycle / 2,
			DeliveredPackets: cycle / 3,
			DeliveredFlits:   flits,
			Throughput:       float64(flits) / float64(cycle),
			BufOcc:           42,
			LinkInFlight:     7,
			Latency:          packetLat(p99),
		}
	}
	last := base(4096, 5400, 210)
	last.Healthy = false
	last.Health = []health.Verdict{
		{Detector: "deadlock", Healthy: true},
		{Detector: "starvation", Healthy: false, Since: 3901, Detail: "t5:N.vc0 head flit stalled 256 cycles; " + strings.Repeat("waiters pile up behind the wedged port ", 3)},
		{Detector: "congestion", Healthy: true, Detail: "delivered 0.31 flits/cycle"},
	}
	last.DeadLinks = 1
	last.FaultsApplied = 4
	last.OverUnityLinks = 0
	last.LastCheckpointCycle = 2048
	last.CheckpointAge = 2048
	last.CheckpointEvery = 512
	last.CheckpointStale = true
	last.HotLinks = []health.LinkLoad{
		{Index: 12, From: 5, To: 6, Dir: "E", Flits: 911},
		{Index: 3, From: 1, To: 5, Dir: "N", Flits: 640},
		{Index: 44, From: 10, To: 9, Dir: "W", Flits: 512},
	}
	last.Flows = []latency.FlowSnap{
		{Flow: "0->10", Count: 1042, MeanCycles: 812.4, P50: 511, P99: 2940, MaxCycles: 3120,
			QueueCycles: 700000, PipelineCycles: 10420, SerializationCycles: 0, ContentionCycles: 136100,
			MeanHops: 4, ZeroLoadCycles: 10, ContentionFactor: 64.25, Saturated: true},
		{Flow: "3->10", Count: 731, MeanCycles: 96.2, P50: 63, P99: 255, MaxCycles: 401,
			QueueCycles: 41000, PipelineCycles: 5848, SerializationCycles: 0, ContentionCycles: 23474,
			MeanHops: 3, ZeroLoadCycles: 8, ContentionFactor: 5.01},
	}
	last.SLO = []latency.SLOSnap{{
		Objective: "p99<=20", Flow: "0->10", Since: 3584, BurnShort: 100, BurnLong: 100,
		Bad: 102, Count: 102, Exemplars: []uint64{4108, 4562},
		Detail: "flow 0->10 p99<=20: burn 100.0x short / 100.0x long; dominant stall: credit/VC-blocked",
	}}
	last.Heatmap = [][]float64{
		{0.91, 0.12, 0.33, 0.04},
		{0.25, 1.00, 0.50, 0.08},
		{0.00, 0.66, 0.75, 0.10},
		{0.05, 0.20, 0.40, 0.60},
	}
	return []*serve.Snapshot{
		base(1024, 900, 40),
		base(2048, 2100, 80),
		base(3072, 3900, 150),
		last,
	}
}

// TestRenderGoldenFrame pins the exact ANSI frame noctop paints for a
// fixed history — colors, escape sequences, column alignment, sparkline
// glyphs, and detail truncation. Regenerate with `go test -run Golden
// -update ./cmd/noctop` after an intentional layout change.
func TestRenderGoldenFrame(t *testing.T) {
	d := &dash{links: 2}
	snaps := frameSnapshots()
	for _, s := range snaps {
		d.observe(s)
	}
	got := d.render(snaps[len(snaps)-1], "sim.example:8080")

	golden := filepath.Join("testdata", "golden_frame.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("frame drifted from golden.\n--- got ---\n%q\n--- want ---\n%q", got, want)
	}

	// Spot-check the load-bearing pieces so a stale golden cannot hide a
	// regression in the essentials.
	for _, needle := range []string{
		"\x1b[41;97m UNHEALTHY \x1b[0m", // red banner
		"cycle 4096",
		"\x1b[31mFIRING\x1b[0m",
		"\x1b[32mok\x1b[0m",
		"\x1b[31mSTALE\x1b[0m",
		"...",                // long starvation detail truncated at 100 chars
		"L12",                // hottest link listed first
		"0->10",              // per-flow panel
		"\x1b[31mSAT\x1b[0m", // saturated flow marker
		"T/T0",
		"p99<=20",  // burning SLO row
		"100%",     // saturated heatmap cell
		"\x1b[K\n", // per-line tail clear for in-place repaint
		"dead links 1",
	} {
		if !strings.Contains(got, needle) {
			t.Errorf("frame lacks %q", needle)
		}
	}
	if strings.Contains(got, "L44") {
		t.Error("-links 2 did not cap the hot-link table")
	}
	// Three observe() deltas → three sparkline columns, peak rendered as
	// the full block.
	if !strings.Contains(got, "█") {
		t.Error("sparkline has no peak glyph")
	}
}

// TestRenderFirstPoll pins the degenerate first frame: one sample, no
// deltas yet, no optional sections — render must not panic or emit the
// fault/checkpoint/hot-link/heatmap blocks.
func TestRenderFirstPoll(t *testing.T) {
	d := &dash{links: 5}
	s := &serve.Snapshot{Cycle: 64, Healthy: true}
	d.observe(s)
	got := d.render(s, "localhost:8080")
	if !strings.Contains(got, "\x1b[42;30m HEALTHY \x1b[0m") {
		t.Error("first frame lacks the healthy banner")
	}
	for _, absent := range []string{"faults", "checkpoint", "hot links", "duty factor", "per-flow", "slo burns"} {
		if strings.Contains(got, absent) {
			t.Errorf("first frame has the optional %q section", absent)
		}
	}
}
