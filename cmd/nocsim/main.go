// Command nocsim runs one on-chip network simulation from command-line
// flags and prints the measured latency, throughput, utilization, and
// energy. It is the ad-hoc exploration tool; cmd/nocbench regenerates the
// paper's experiments.
//
// Examples:
//
//	nocsim -topo torus -k 4 -pattern uniform -rate 0.3
//	nocsim -topo mesh -k 8 -pattern transpose -rate 0.2 -flits 4
//	nocsim -print-layout -topo torus -k 4
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/flit"
	"repro/internal/network"
	"repro/internal/router"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	var (
		topoName = flag.String("topo", "torus", "topology: torus or mesh")
		k        = flag.Int("k", 4, "radix (k x k tiles)")
		pattern  = flag.String("pattern", "uniform", "traffic: uniform, transpose, bitcomp, shuffle, tornado, neighbor")
		rate     = flag.Float64("rate", 0.2, "offered load, flits/cycle/node")
		flits    = flag.Int("flits", 1, "flits per packet")
		vcs      = flag.Int("vcs", 8, "virtual channels")
		buf      = flag.Int("buf", 4, "flit buffers per VC")
		mode     = flag.String("mode", "vc", "flow control: vc, drop, deflect, elastic, vct")
		adaptive = flag.Bool("adaptive", false, "west-first adaptive routing (mesh only)")
		serdes   = flag.Int("serdes", 1, "link cycles per flit (narrow links)")
		nonspec  = flag.Bool("nonspec", false, "disable speculative VC allocation")
		warmup   = flag.Int64("warmup", 1000, "warmup cycles")
		measure  = flag.Int64("measure", 4000, "measurement cycles")
		seed     = flag.Int64("seed", 1, "random seed")
		layout   = flag.Bool("print-layout", false, "print the tile placement (Fig. 1) and exit")
		trace    = flag.String("trace", "", "replay a trace file (cycle src dst bytes [class]) instead of synthetic traffic")
		heatmap  = flag.Bool("heatmap", false, "print a per-tile link duty-factor heatmap after the run")
	)
	flag.Parse()

	if *layout {
		topo, err := core.BuildTopology(*topoName, *k)
		if err != nil {
			fatal(err)
		}
		fmt.Print(topology.Layout(topo))
		fmt.Println(topology.Analyze(topo).String())
		rc := router.DefaultConfig(0)
		rc.NumVCs = *vcs
		rc.BufFlits = *buf
		if r, err := router.New(rc); err == nil {
			fmt.Println()
			fmt.Print(r.Describe())
		}
		return
	}

	p := core.DefaultRunParams()
	p.Topology = *topoName
	p.K = *k
	p.Pattern = *pattern
	p.Rate = *rate
	p.FlitsPerPacket = *flits
	p.NumVCs = *vcs
	p.BufFlits = *buf
	p.SerdesCycles = *serdes
	p.NonSpeculative = *nonspec
	p.WarmupCycles = *warmup
	p.MeasureCycles = *measure
	p.Seed = *seed
	p.Metered = true
	switch *mode {
	case "vc":
	case "drop":
		p.Mode = router.ModeDrop
		p.FlitsPerPacket = 1
	case "deflect":
		p.Deflect = true
		p.FlitsPerPacket = 1
	case "elastic":
		p.ElasticLinks = true
	case "vct":
		p.CutThrough = true
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	p.Adaptive = *adaptive

	if *trace != "" {
		if err := runTrace(p, *trace, *heatmap); err != nil {
			fatal(err)
		}
		return
	}

	res, err := core.Run(p)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("topology          %s-%dx%d, %s traffic, %d-flit packets\n",
		p.Topology, p.K, p.K, p.Pattern, p.FlitsPerPacket)
	fmt.Printf("offered           %.3f flits/cycle/node\n", res.OfferedFlits)
	fmt.Printf("accepted          %.3f flits/cycle/node\n", res.AcceptedFlits)
	fmt.Printf("packets delivered %d\n", res.DeliveredPackets)
	fmt.Printf("latency           avg %.1f  p50 %d  p99 %d  max %d cycles\n",
		res.AvgLatency, res.P50Latency, res.P99Latency, res.MaxLatency)
	fmt.Printf("network latency   avg %.1f cycles (injection to delivery)\n", res.AvgNetLat)
	fmt.Printf("link utilization  mean %.1f%%  max %.1f%%\n",
		100*res.LinkUtilMean, 100*res.LinkUtilMax)
	if res.DroppedPackets > 0 {
		fmt.Printf("dropped packets   %d\n", res.DroppedPackets)
	}
	if res.EnergyPerFlit > 0 {
		fmt.Printf("energy            %.3g J/flit (hop %.3g J + wire %.3g J total)\n",
			res.EnergyPerFlit, res.HopEnergyJ, res.WireEnergyJ)
	}
	if *heatmap {
		// Re-run with the same parameters to expose the network for the
		// heatmap (core.Run owns its network); cheap at these sizes.
		n, _, err := core.BuildNetwork(p)
		if err != nil {
			fatal(err)
		}
		attachGenerators(n, p)
		n.Run(p.WarmupCycles + p.MeasureCycles)
		fmt.Print(n.Heatmap())
	}
}

// attachGenerators mirrors core.Run's traffic setup for the heatmap rerun.
func attachGenerators(n *network.Network, p core.RunParams) {
	pattern, err := traffic.ByName(p.Pattern, p.K, p.K)
	if err != nil {
		fatal(err)
	}
	mask := flit.VCMask(0xFF)
	for tile := 0; tile < n.Topology().NumTiles(); tile++ {
		g := traffic.NewGenerator(tile, pattern, p.Rate, p.FlitsPerPacket, mask, p.Seed)
		g.StopAt = p.WarmupCycles + p.MeasureCycles
		n.AttachClient(tile, g)
	}
}

// runTrace replays a trace file through the configured network and prints
// delivery statistics.
func runTrace(p core.RunParams, path string, heatmap bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := traffic.ParseTrace(f)
	if err != nil {
		return err
	}
	p.WarmupCycles = 0 // a replayed trace is measured in full
	n, _, err := core.BuildNetwork(p)
	if err != nil {
		return err
	}
	tiles := n.Topology().NumTiles()
	srcs, err := traffic.SplitByTile(events, tiles, flit.VCMask(0xFF))
	if err != nil {
		return err
	}
	for tile, src := range srcs {
		n.AttachClient(tile, src)
	}
	horizon := int64(0)
	for _, e := range events {
		if e.Cycle > horizon {
			horizon = e.Cycle
		}
	}
	n.Run(horizon + 1)
	if !n.Drain(1_000_000) {
		return fmt.Errorf("trace did not drain (occupancy %d)", n.Occupancy())
	}
	rec := n.Recorder()
	fmt.Printf("trace             %s: %d events over %d cycles\n", path, len(events), horizon+1)
	fmt.Printf("packets delivered %d (of %d generated)\n", rec.DeliveredPackets, rec.Generated)
	fmt.Printf("latency           %s\n", rec.PacketLatency.String())
	fmt.Printf("finished at cycle %d\n", n.Kernel().Now())
	if heatmap {
		fmt.Print(n.Heatmap())
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nocsim:", err)
	os.Exit(1)
}
