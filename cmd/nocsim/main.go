// Command nocsim runs one on-chip network simulation from command-line
// flags and prints the measured latency, throughput, utilization, and
// energy. It is the ad-hoc exploration tool; cmd/nocbench regenerates the
// paper's experiments.
//
// Examples:
//
//	nocsim -topo torus -k 4 -pattern uniform -rate 0.3
//	nocsim -topo mesh -k 8 -pattern transpose -rate 0.2 -flits 4
//	nocsim -print-layout -topo torus -k 4
//	nocsim -faults 'kill,link=9,at=500' -watchdog 64 -seed 7
//	nocsim -mtbf 2000 -measure 8000 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/cmd/internal/obs"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/flit"
	"repro/internal/network"
	"repro/internal/router"
	"repro/internal/telemetry/flightrec"
	"repro/internal/telemetry/serve"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	var (
		topoName = flag.String("topo", "torus", "topology: torus or mesh")
		k        = flag.Int("k", 4, "radix (k x k tiles)")
		pattern  = flag.String("pattern", "uniform", "traffic: uniform, transpose, bitcomp, shuffle, tornado, neighbor")
		rate     = flag.Float64("rate", 0.2, "offered load, flits/cycle/node")
		flits    = flag.Int("flits", 1, "flits per packet")
		vcs      = flag.Int("vcs", 8, "virtual channels")
		buf      = flag.Int("buf", 4, "flit buffers per VC")
		mode     = flag.String("mode", "vc", "flow control: vc, drop, deflect, elastic, vct")
		adaptive = flag.Bool("adaptive", false, "west-first adaptive routing (mesh only)")
		serdes   = flag.Int("serdes", 1, "link cycles per flit (narrow links)")
		nonspec  = flag.Bool("nonspec", false, "disable speculative VC allocation")
		warmup   = flag.Int64("warmup", 1000, "warmup cycles")
		measure  = flag.Int64("measure", 4000, "measurement cycles")
		seed     = flag.Int64("seed", 1, "random seed")
		layout   = flag.Bool("print-layout", false, "print the tile placement (Fig. 1) and exit")
		trace    = flag.String("trace", "", "replay a trace file (cycle src dst bytes [class]) instead of synthetic traffic")
		heatmap  = flag.Bool("heatmap", false, "print a per-tile link duty-factor heatmap after the run")
		faults   = flag.String("faults", "", "fault campaign spec, e.g. 'kill,link=9,at=500;stall,tile=6,port=W,at=800,until=1100'")
		mtbf     = flag.Float64("mtbf", 0, "mean cycles between stochastic faults (0 disables)")
		watchdog = flag.Int("watchdog", 64, "credit-starvation watchdog threshold, cycles (campaign runs)")
		shards   = flag.Int("shards", 1, "intra-cycle shards: routers simulated in parallel, identical results (0 = GOMAXPROCS, 1 = sequential)")
		batch    = flag.Int("batch-epochs", 0, "max cycles folded into one barrier epoch while near-quiescent, sharded runs only (0 = default 64, -1 disables); identical results")

		ckptEvery = flag.Int64("checkpoint-every", 0, "write a crash-safe checkpoint every N cycles (0 disables; needs -checkpoint-dir)")
		ckptDir   = flag.String("checkpoint-dir", "", "directory for checkpoint files (ckpt-*.noc + MANIFEST)")
		resume    = flag.Bool("resume", false, "resume from the newest valid checkpoint in -checkpoint-dir (fresh start when none)")
	)
	obsFlags := obs.Register()
	flag.Parse()

	if *layout {
		topo, err := core.BuildTopology(*topoName, *k)
		if err != nil {
			fatal(err)
		}
		fmt.Print(topology.Layout(topo))
		fmt.Println(topology.Analyze(topo).String())
		rc := router.DefaultConfig(0)
		rc.NumVCs = *vcs
		rc.BufFlits = *buf
		if r, err := router.New(rc); err == nil {
			fmt.Println()
			fmt.Print(r.Describe())
		}
		return
	}

	// Flag validation: reject contradictory combinations with a clear
	// message instead of silently overriding or failing deep in the build.
	if *mtbf < 0 {
		fatal(fmt.Errorf("-mtbf must be >= 0 cycles; got %g", *mtbf))
	}
	campaign := *faults != "" || *mtbf > 0
	switch *topoName {
	case "torus":
		if *k < 3 {
			fatal(fmt.Errorf("-topo torus needs -k >= 3 (radix-2 torus rings are not modelled); got %d", *k))
		}
	case "mesh":
		if *k < 2 {
			fatal(fmt.Errorf("-topo mesh needs -k >= 2; got %d", *k))
		}
	default:
		fatal(fmt.Errorf("unknown -topo %q (torus or mesh)", *topoName))
	}
	if *rate <= 0 || *rate > 1 {
		fatal(fmt.Errorf("-rate must be in (0, 1] flits/cycle/node; got %g", *rate))
	}
	if *flits < 1 {
		fatal(fmt.Errorf("-flits must be >= 1; got %d", *flits))
	}
	if *vcs < 1 || *vcs > 8 {
		fatal(fmt.Errorf("-vcs must be 1..8 (the VC id field is 3 bits); got %d", *vcs))
	}
	if *buf < 1 {
		fatal(fmt.Errorf("-buf must be >= 1 flit per VC; got %d", *buf))
	}
	if *serdes < 1 {
		fatal(fmt.Errorf("-serdes must be >= 1 link cycles per flit; got %d", *serdes))
	}
	if *shards < 0 {
		fatal(fmt.Errorf("-shards must be >= 0 (0 = GOMAXPROCS); got %d", *shards))
	}
	if *warmup < 0 || *measure < 1 {
		fatal(fmt.Errorf("need -warmup >= 0 and -measure >= 1; got %d, %d", *warmup, *measure))
	}
	if (*mode == "drop" || *mode == "deflect") && *flits != 1 {
		fatal(fmt.Errorf("-mode %s carries single-flit packets only; use -flits 1, not %d", *mode, *flits))
	}
	if *adaptive && *topoName != "mesh" {
		fatal(fmt.Errorf("-adaptive west-first routing is deadlock-free on meshes only; use -topo mesh"))
	}
	if *mode == "elastic" && *topoName != "mesh" {
		fatal(fmt.Errorf("-mode elastic serializes VCs and would deadlock torus rings; use -topo mesh"))
	}
	if err := obsFlags.Validate(); err != nil {
		fatal(err)
	}
	checkpointing := *ckptEvery > 0 || *resume
	if *ckptEvery < 0 {
		fatal(fmt.Errorf("-checkpoint-every must be >= 0 cycles; got %d", *ckptEvery))
	}
	if checkpointing {
		if *ckptDir == "" {
			fatal(fmt.Errorf("-checkpoint-every/-resume need -checkpoint-dir"))
		}
		if *mode == "deflect" {
			fatal(fmt.Errorf("checkpointing does not cover deflection routers; drop -mode deflect"))
		}
	}
	if campaign {
		if *mode != "vc" {
			fatal(fmt.Errorf("-faults/-mtbf need the credit-based VC router; -mode %s cannot starve credits for the watchdogs", *mode))
		}
		if *adaptive {
			fatal(fmt.Errorf("-faults/-mtbf use fault-aware source routing; drop -adaptive"))
		}
		if *watchdog < 1 {
			fatal(fmt.Errorf("-faults/-mtbf need -watchdog >= 1 cycles for online detection; got %d", *watchdog))
		}
		if *trace != "" {
			fatal(fmt.Errorf("-trace and -faults/-mtbf are mutually exclusive"))
		}
		if _, err := fault.ParseEvents(*faults); err != nil {
			fatal(fmt.Errorf("bad -faults spec: %w", err))
		}
	}

	p := core.DefaultRunParams()
	p.Topology = *topoName
	p.K = *k
	p.Pattern = *pattern
	p.Rate = *rate
	p.FlitsPerPacket = *flits
	p.NumVCs = *vcs
	p.BufFlits = *buf
	p.SerdesCycles = *serdes
	p.NonSpeculative = *nonspec
	p.WarmupCycles = *warmup
	p.MeasureCycles = *measure
	p.Seed = *seed
	// The power meter is a globally ordered accumulator, so a metered
	// network always falls back to the sequential loop; a sharded run
	// trades the energy lines for speed.
	p.Metered = *shards == 1
	if !p.Metered {
		fmt.Fprintln(os.Stderr, "nocsim: note: -shards disables the power meter (energy lines omitted)")
	}
	// The power meter is a globally ordered accumulator outside the
	// snapshot's coverage, so checkpointed runs trade the energy lines too.
	if checkpointing && p.Metered {
		p.Metered = false
		fmt.Fprintln(os.Stderr, "nocsim: note: checkpointing disables the power meter (energy lines omitted)")
	}
	// Flight-recorder keyframes are checkpoint snapshots, so the meter
	// blocks them the same way; -flightrec trades the energy lines too.
	if obsFlags.FlightRec && p.Metered {
		p.Metered = false
		fmt.Fprintln(os.Stderr, "nocsim: note: -flightrec disables the power meter (energy lines omitted)")
	}
	p.CheckpointEvery = *ckptEvery
	p.CheckpointDir = *ckptDir
	p.Resume = *resume
	p.Shards = *shards
	if *shards == 0 {
		p.Shards = -1 // core: explicit GOMAXPROCS request
	}
	p.BatchEpochs = *batch
	switch *mode {
	case "vc":
	case "drop":
		p.Mode = router.ModeDrop
	case "deflect":
		p.Deflect = true
	case "elastic":
		p.ElasticLinks = true
	case "vct":
		p.CutThrough = true
	default:
		fatal(fmt.Errorf("unknown -mode %q (vc, drop, deflect, elastic, vct)", *mode))
	}
	p.Adaptive = *adaptive

	// -heatmap reads the telemetry layer's counters, so it implies a
	// (counters-only) probe even without -metrics.
	p.Probe = obsFlags.NewProbe()
	if p.Probe == nil && *heatmap {
		p.Probe = obs.HeatmapProbe()
	}
	// -serve attaches the live observability service to the run's network
	// just before the first cycle; -flightrec attaches the flight recorder
	// the same way. The recorder stamps dumps and keyframes with the run's
	// identity (spec JSON + config hash), which the campaign and trace
	// paths refine below before the network is built.
	frKind, frExtra := "run", ""
	var (
		srv    *serve.Server
		frRec  *flightrec.Recorder
		frStop = func() {}
	)
	p.OnNetwork = func(n *network.Network) error {
		if _, err := obsFlags.AttachFlows(n); err != nil {
			return err
		}
		s, err := obsFlags.AttachServe(n)
		if err != nil {
			return err
		}
		srv = s
		spec, err := core.SpecForRun(frKind, p).JSON()
		if err != nil {
			return err
		}
		rec, stop, err := obsFlags.AttachFlightRec(n, srv, frKind, spec, core.ConfigHash(frKind, p, frExtra))
		if err != nil {
			return err
		}
		if rec != nil {
			frRec, frStop = rec, stop
		}
		return nil
	}
	defer func() {
		frStop()
		obs.ReportFlightRec(os.Stderr, frRec)
		if srv != nil {
			srv.Close()
		}
	}()
	stopProf, err := obsFlags.StartPprof()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	if campaign {
		// Mirror runCampaign's parameter edits and core.RunCampaign's hash
		// inputs here so the flight recorder's spec and config hash match
		// the run that is actually executed.
		p.Watchdog = *watchdog
		frKind = "campaign"
		frExtra = fmt.Sprintf("%s|%v|%d", *faults, *mtbf, p.WarmupCycles+p.MeasureCycles)
		if err := runCampaign(p, *faults, *mtbf, *watchdog); err != nil {
			fatal(err)
		}
		if err := obsFlags.Emit(os.Stdout, p.Probe, *heatmap); err != nil {
			fatal(err)
		}
		return
	}

	if *trace != "" {
		p.WarmupCycles = 0 // runTrace measures the replay in full
		frKind = "trace"
		if err := runTrace(p, *trace, &frExtra); err != nil {
			fatal(err)
		}
		if err := obsFlags.Emit(os.Stdout, p.Probe, *heatmap); err != nil {
			fatal(err)
		}
		return
	}

	start := time.Now()
	res, err := core.Run(p)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("topology          %s-%dx%d, %s traffic, %d-flit packets\n",
		p.Topology, p.K, p.K, p.Pattern, p.FlitsPerPacket)
	fmt.Printf("offered           %.3f flits/cycle/node\n", res.OfferedFlits)
	fmt.Printf("accepted          %.3f flits/cycle/node\n", res.AcceptedFlits)
	fmt.Printf("packets delivered %d\n", res.DeliveredPackets)
	fmt.Printf("latency           avg %.1f  p50 %d  p99 %d  max %d cycles\n",
		res.AvgLatency, res.P50Latency, res.P99Latency, res.MaxLatency)
	fmt.Printf("network latency   avg %.1f cycles (injection to delivery)\n", res.AvgNetLat)
	fmt.Printf("link utilization  mean %.1f%%  max %.1f%%\n",
		100*res.LinkUtilMean, 100*res.LinkUtilMax)
	if res.DroppedPackets > 0 {
		fmt.Printf("dropped packets   %d\n", res.DroppedPackets)
	}
	if res.EnergyPerFlit > 0 {
		fmt.Printf("energy            %.3g J/flit (hop %.3g J + wire %.3g J total)\n",
			res.EnergyPerFlit, res.HopEnergyJ, res.WireEnergyJ)
	}
	cycles := core.SimulatedCycles()
	fmt.Printf("engine            %d simulated cycles in %.2fs wall clock (%.2fM cycles/s)\n",
		cycles, elapsed.Seconds(), float64(cycles)/elapsed.Seconds()/1e6)
	if err := obsFlags.Emit(os.Stdout, p.Probe, *heatmap); err != nil {
		fatal(err)
	}
}

// runCampaign executes a fault-injection campaign and prints the chaos
// report: what was injected, what the watchdogs detected and how fast,
// and what the rerouted network still delivered.
func runCampaign(p core.RunParams, spec string, mtbf float64, watchdog int) error {
	p.Watchdog = watchdog
	cp := core.CampaignParams{
		Run:    p,
		Spec:   spec,
		MTBF:   mtbf,
		Cycles: p.WarmupCycles + p.MeasureCycles,
	}
	res, err := core.RunCampaign(cp)
	if err != nil {
		return err
	}
	fmt.Printf("fault campaign    %s-%dx%d, uniform bernoulli %.2f, %d cycles, seed %d\n",
		p.Topology, p.K, p.K, p.Rate, cp.Cycles, p.Seed)
	if spec != "" {
		fmt.Printf("scheduled faults  %s\n", spec)
	}
	if mtbf > 0 {
		fmt.Printf("stochastic faults mtbf %.0f cycles\n", mtbf)
	}
	fmt.Printf("faults injected   %d (skipped %d)\n", res.Injected, res.Skipped)
	fmt.Printf("packets           sent %d  delivered %d  send-refused %d\n",
		res.Sent, res.Delivered, res.SendFails)
	tot := res.Totals
	fmt.Printf("fail-stop losses  wire flits %d  drained flits %d  aborted in-net %d  aborted at rx %d\n",
		tot.LostFlits, tot.DroppedFlits, tot.AbortedIn, tot.AbortedRx)
	fmt.Printf("rerouting         %d packets diverted, %d unroutable (network cut)\n",
		tot.Rerouted, tot.Unroutable)
	fmt.Printf("detections        %d dead channels (watchdog threshold %d)\n", len(res.Detections), watchdog)
	for i, det := range res.Detections {
		lat := "fault not injector-attributed"
		if i < len(res.DetectionLatencies) && res.DetectionLatencies[i] >= 0 {
			lat = fmt.Sprintf("latency %d cycles", res.DetectionLatencies[i])
		}
		fmt.Printf("  tile %d -> %v dead at cycle %d (%s)\n", det.From, det.Dir, det.DetectedAt, lat)
	}
	if len(res.Detections) > 0 {
		fmt.Printf("post-fault        %d/%d packets born after last detection delivered (%d lost)\n",
			res.BornAfterEngage-res.LostAfterEngage, res.BornAfterEngage, res.LostAfterEngage)
		fmt.Printf("post-fault tput   %.4f packets/cycle/node\n", res.PostFaultThroughput)
	}
	return nil
}

// runTrace replays a trace file through the configured network and prints
// delivery statistics. The trace's identity is written through extraOut
// before the network is built so the flight recorder's config hash matches
// the one core.RunToHorizon stamps on checkpoints.
func runTrace(p core.RunParams, path string, extraOut *string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := traffic.ParseTrace(f)
	if err != nil {
		return err
	}
	p.WarmupCycles = 0 // a replayed trace is measured in full
	horizon := int64(0)
	for _, e := range events {
		if e.Cycle > horizon {
			horizon = e.Cycle
		}
	}
	if extraOut != nil {
		*extraOut = fmt.Sprintf("%s|%d|%d", path, len(events), horizon)
	}
	build := func() (*network.Network, error) {
		n, _, err := core.BuildNetwork(p)
		if err != nil {
			return nil, err
		}
		tiles := n.Topology().NumTiles()
		srcs, err := traffic.SplitByTile(events, tiles, flit.VCMask(0xFF))
		if err != nil {
			return nil, err
		}
		for tile, src := range srcs {
			n.AttachClient(tile, src)
		}
		if p.OnNetwork != nil {
			if err := p.OnNetwork(n); err != nil {
				return nil, err
			}
		}
		return n, nil
	}
	n, err := build()
	if err != nil {
		return err
	}
	// The trace file's identity rides in the config hash so a resume
	// against a different trace is rejected, not silently merged.
	n, err = core.RunToHorizon(n, p, horizon+1, "trace",
		fmt.Sprintf("%s|%d|%d", path, len(events), horizon), build)
	if err != nil {
		return err
	}
	if !n.Drain(1_000_000) {
		return fmt.Errorf("trace did not drain (occupancy %d)", n.Occupancy())
	}
	rec := n.Recorder()
	fmt.Printf("trace             %s: %d events over %d cycles\n", path, len(events), horizon+1)
	fmt.Printf("packets delivered %d (of %d generated)\n", rec.DeliveredPackets, rec.Generated)
	fmt.Printf("latency           %s\n", rec.PacketLatency.String())
	fmt.Printf("finished at cycle %d\n", n.Kernel().Now())
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nocsim:", err)
	os.Exit(1)
}
