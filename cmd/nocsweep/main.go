// Command nocsweep runs a load–latency sweep and emits CSV, the data
// behind figures like E4's curves.
//
//	nocsweep -topo torus -k 8 -flits 4 > torus.csv
//	nocsweep -topo mesh -k 8 -rates 0.1,0.2,0.3,0.4,0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/cmd/internal/obs"
	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/telemetry/flightrec"
	"repro/internal/telemetry/serve"
)

func main() {
	var (
		topoName = flag.String("topo", "torus", "topology: torus or mesh")
		k        = flag.Int("k", 4, "radix (k x k tiles)")
		pattern  = flag.String("pattern", "uniform", "traffic pattern")
		flits    = flag.Int("flits", 1, "flits per packet")
		rateList = flag.String("rates", "0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9", "comma-separated offered loads")
		warmup   = flag.Int64("warmup", 1000, "warmup cycles")
		measure  = flag.Int64("measure", 4000, "measurement cycles")
		seed     = flag.Int64("seed", 1, "random seed")
		par      = flag.Int("parallel", 0, "concurrent sweep points (0 = GOMAXPROCS)")
		shards   = flag.Int("shards", 1, "intra-cycle shards per simulation, identical results (0 = GOMAXPROCS, 1 = sequential); composes with -parallel")
		batch    = flag.Int("batch-epochs", 0, "max cycles folded into one barrier epoch while near-quiescent, sharded runs only (0 = default 64, -1 disables); identical results")
		replicas = flag.Int("replicas", 1, "measurement replicas per point, warm-forked from one shared warmup (replica seeds derive from -seed; 1 = single measurement)")

		ckptEvery = flag.Int64("checkpoint-every", 0, "checkpoint every sweep point every N cycles (0 disables; needs -checkpoint-dir)")
		ckptDir   = flag.String("checkpoint-dir", "", "checkpoint root; each point uses its own point-NNN subdirectory")
		resume    = flag.Bool("resume", false, "resume every point from its newest valid checkpoint under -checkpoint-dir")
	)
	obsFlags := obs.Register()
	flag.Parse()
	if err := obsFlags.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "nocsweep:", err)
		os.Exit(1)
	}
	core.SetParallelism(*par)
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "nocsweep: -shards must be >= 0 (0 = GOMAXPROCS); got %d\n", *shards)
		os.Exit(1)
	}
	core.SetShards(*shards)
	if *ckptEvery < 0 {
		fmt.Fprintf(os.Stderr, "nocsweep: -checkpoint-every must be >= 0 cycles; got %d\n", *ckptEvery)
		os.Exit(1)
	}
	if (*ckptEvery > 0 || *resume) && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "nocsweep: -checkpoint-every/-resume need -checkpoint-dir")
		os.Exit(1)
	}
	if *replicas < 1 {
		fmt.Fprintf(os.Stderr, "nocsweep: -replicas must be >= 1; got %d\n", *replicas)
		os.Exit(1)
	}
	if *replicas > 1 && (*ckptEvery > 0 || *resume || *ckptDir != "") {
		fmt.Fprintln(os.Stderr, "nocsweep: -replicas forks warmups in memory and does not compose with disk checkpointing flags")
		os.Exit(1)
	}

	var rates []float64
	for _, s := range strings.Split(*rateList, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 || v > 1.0 {
			fmt.Fprintf(os.Stderr, "nocsweep: bad rate %q (need 0 < rate <= 1.0 flits/node/cycle)\n", s)
			os.Exit(1)
		}
		rates = append(rates, v)
	}
	if len(rates) == 0 {
		fmt.Fprintln(os.Stderr, "nocsweep: -rates is empty; nothing to sweep")
		os.Exit(1)
	}

	stopProf, err := obsFlags.StartPprof()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nocsweep:", err)
		os.Exit(1)
	}
	defer stopProf()

	start := time.Now()
	base := core.DefaultRunParams()
	base.Topology = *topoName
	base.K = *k
	base.Pattern = *pattern
	base.FlitsPerPacket = *flits
	base.WarmupCycles = *warmup
	base.MeasureCycles = *measure
	base.Seed = *seed
	base.BatchEpochs = *batch
	base.CheckpointEvery = *ckptEvery
	base.CheckpointDir = *ckptDir
	base.Resume = *resume

	var points []core.SweepPoint
	if *replicas > 1 {
		// Replicated mode: every point runs one shared warmup and forks
		// each measurement window from its in-memory snapshot. The CSV
		// gains a replica column; the saturation estimate uses per-point
		// means.
		rpts, err := core.SweepReplicated(base, rates, *replicas)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nocsweep:", err)
			os.Exit(1)
		}
		fmt.Println("offered,replica,accepted,avg_latency,p50,p99,max,util_mean,util_max")
		for _, pt := range rpts {
			for ri, r := range pt.Replicas {
				fmt.Printf("%.3f,%d,%.4f,%.2f,%d,%d,%d,%.4f,%.4f\n",
					pt.Rate, ri, r.AcceptedFlits, r.AvgLatency, r.P50Latency, r.P99Latency,
					r.MaxLatency, r.LinkUtilMean, r.LinkUtilMax)
			}
			points = append(points, core.SweepPoint{Rate: pt.Rate, Result: pt.Mean()})
		}
	} else {
		var err error
		points, err = core.Sweep(base, rates)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nocsweep:", err)
			os.Exit(1)
		}
		fmt.Println("offered,accepted,avg_latency,p50,p99,max,util_mean,util_max")
		for _, pt := range points {
			r := pt.Result
			fmt.Printf("%.3f,%.4f,%.2f,%d,%d,%d,%.4f,%.4f\n",
				pt.Rate, r.AcceptedFlits, r.AvgLatency, r.P50Latency, r.P99Latency,
				r.MaxLatency, r.LinkUtilMean, r.LinkUtilMax)
		}
	}
	fmt.Fprintf(os.Stderr, "saturation ≈ %.3f flits/node/cycle\n", core.SaturationRate(points))
	elapsed := time.Since(start)
	cycles := core.SimulatedCycles()
	measurements := len(points) * *replicas
	fmt.Fprintf(os.Stderr, "%d points × %d replicas in %.2fs wall clock (%.2f points/s), %d simulated cycles (%.2fM cycles/s)\n",
		len(points), *replicas, elapsed.Seconds(), float64(measurements)/elapsed.Seconds(),
		cycles, float64(cycles)/elapsed.Seconds()/1e6)
	if hits, misses := artifact.Stats(); hits+misses > 0 {
		fmt.Fprintf(os.Stderr, "artifact cache: %d hits, %d misses\n", hits, misses)
	}

	// Sweep points run concurrently on throwaway networks, so telemetry
	// instruments one extra sequential run at the heaviest load instead.
	if obsFlags.Enabled() {
		inst := base
		inst.Rate = rates[len(rates)-1]
		for _, r := range rates {
			if r > inst.Rate {
				inst.Rate = r
			}
		}
		inst.Probe = obsFlags.NewProbe()
		// The instrumentation run is throwaway: never checkpoint it.
		inst.CheckpointEvery, inst.CheckpointDir, inst.Resume = 0, "", false
		var srv *serve.Server
		var frRec *flightrec.Recorder
		frStop := func() {}
		inst.OnNetwork = func(n *network.Network) error {
			if _, err := obsFlags.AttachFlows(n); err != nil {
				return err
			}
			s, err := obsFlags.AttachServe(n)
			if err != nil {
				return err
			}
			srv = s
			rec, stop, err := obsFlags.AttachFlightRecRun(n, srv, inst)
			if err != nil {
				return err
			}
			if rec != nil {
				frRec, frStop = rec, stop
			}
			return nil
		}
		if _, err := core.Run(inst); err != nil {
			fmt.Fprintln(os.Stderr, "nocsweep: telemetry run:", err)
			os.Exit(1)
		}
		frStop()
		obs.ReportFlightRec(os.Stderr, frRec)
		if srv != nil {
			srv.Close()
		}
		fmt.Fprintf(os.Stderr, "telemetry run at rate %.3f:\n", inst.Rate)
		if err := obsFlags.Emit(os.Stderr, inst.Probe, false); err != nil {
			fmt.Fprintln(os.Stderr, "nocsweep:", err)
			os.Exit(1)
		}
	}
}
