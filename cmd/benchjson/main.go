// Command benchjson converts `go test -bench -benchmem` output on stdin
// into the benchmark regression record BENCH_cycles.json. For the
// cycle-loop microbenchmarks (one op = one simulated network cycle) it
// also derives simulated cycles per second, the engine's headline speed
// metric. `make bench` wires it up.
//
//	go test -run '^$' -bench NetworkCycle -benchmem . | benchjson -o BENCH_cycles.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// CyclesPerSec is simulated cycles per wall-clock second, only set
	// for benchmarks whose op is one network cycle (NetworkCycle*).
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
}

// Record is the top-level BENCH_cycles.json document.
type Record struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	Benchmarks  []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "BENCH_cycles.json", "output JSON path")
	flag.Parse()

	rec := Record{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays visible
		r, ok := parseLine(line)
		if !ok {
			continue
		}
		rec.Benchmarks = append(rec.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(rec.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin (pipe `go test -bench -benchmem` output)"))
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rec.Benchmarks), *out)
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkNetworkCycle   233782   9793 ns/op   0 B/op   0 allocs/op
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -<procs> suffix go test appends (Benchmark...-8).
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v := fields[i]
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp, _ = strconv.ParseFloat(v, 64)
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(v, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(v, 10, 64)
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	if strings.HasPrefix(name, "NetworkCycle") {
		r.CyclesPerSec = 1e9 / r.NsPerOp
	}
	return r, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
