// Command benchjson converts `go test -bench -benchmem` output on stdin
// into the benchmark regression record BENCH_cycles.json. For the
// cycle-loop microbenchmarks (one op = one simulated network cycle) it
// also derives simulated cycles per second, the engine's headline speed
// metric. `make bench` wires it up.
//
//	go test -run '^$' -bench NetworkCycle -benchmem . | benchjson -o BENCH_cycles.json
//
// With -against it is the regression gate instead: parsed results are
// compared to a previously written record and the process exits non-zero
// when ns/op or allocs/op regress beyond -max-regress percent. `make ci`
// runs a short pass against the committed snapshot.
//
//	go test -run '^$' -bench NetworkCycle -benchmem . | benchjson -against BENCH_cycles.json -max-regress 10
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Procs is the GOMAXPROCS the benchmark ran at (go test's -N name
	// suffix; 1 when absent). The shard benchmarks run at several widths,
	// so (name, procs) is the record key.
	Procs       int     `json:"procs,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// CyclesPerSec is simulated cycles per wall-clock second, only set
	// for benchmarks whose op is one network cycle (NetworkCycle*).
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
	// PointsPerSec is campaign throughput in sweep measurements per
	// wall-clock second, reported by the SweepThroughput benchmarks via
	// b.ReportMetric (a custom "points/sec" column). Higher is better, so
	// the gate flags drops, not rises.
	PointsPerSec float64 `json:"points_per_sec,omitempty"`
}

// Record is the top-level BENCH_cycles.json document.
type Record struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	Benchmarks  []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "BENCH_cycles.json", "output JSON path")
	against := flag.String("against", "", "baseline record to compare against (regression gate)")
	maxRegress := flag.Float64("max-regress", 10, "allowed ns/op and allocs/op regression, percent")
	flag.Parse()
	outSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "o" {
			outSet = true
		}
	})

	rec := Record{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays visible
		r, ok := parseLine(line)
		if !ok {
			continue
		}
		rec.Benchmarks = append(rec.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(rec.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin (pipe `go test -bench -benchmem` output)"))
	}
	if *against != "" {
		regressions, err := compare(*against, rec.Benchmarks, *maxRegress)
		if err != nil {
			fatal(err)
		}
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) beyond %.0f%%\n", regressions, *maxRegress)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: no regressions beyond %.0f%% across %d benchmarks\n",
			*maxRegress, len(rec.Benchmarks))
		if !outSet {
			return // compare mode only rewrites the record when asked
		}
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rec.Benchmarks), *out)
}

// compare checks every new result against the baseline record and reports
// the number of regressions. A result matches its baseline by (name,
// procs), falling back to a name-only match so records written before
// multi-procs runs (or at another machine's width) still gate. New ns/op
// may exceed old by at most maxPct percent; allocs/op likewise, except
// that any allocation appearing in a previously allocation-free benchmark
// is a regression outright (0 * 1.10 is still 0). Serve, FlightRec, and
// LatencyObs benchmarks gate bytes/op too: their contract is a constant-byte
// (near-zero) steady state, and a byte-count regression there means the
// lazy-snapshot path (or the recorder's ring append) started copying per
// cycle — which allocs/op alone would miss when the copies amortize below
// one allocation per op.
func compare(path string, results []Result, maxPct float64) (regressions int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var base Record
	if err := json.Unmarshal(data, &base); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	find := func(name string, procs int) *Result {
		var byName *Result
		for i := range base.Benchmarks {
			b := &base.Benchmarks[i]
			if b.Name != name {
				continue
			}
			bp := b.Procs
			if bp == 0 {
				bp = 1
			}
			if bp == procs {
				return b
			}
			if byName == nil {
				byName = b
			}
		}
		return byName
	}
	for _, r := range results {
		old := find(r.Name, r.Procs)
		if old == nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s-%d: new benchmark, no baseline\n", r.Name, r.Procs)
			continue
		}
		limit := old.NsPerOp * (1 + maxPct/100)
		if r.NsPerOp > limit {
			fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s-%d: %.0f ns/op vs baseline %.0f (+%.1f%%, limit %.0f%%)\n",
				r.Name, r.Procs, r.NsPerOp, old.NsPerOp, 100*(r.NsPerOp/old.NsPerOp-1), maxPct)
			regressions++
		}
		allocLimit := int64(float64(old.AllocsPerOp) * (1 + maxPct/100))
		if r.AllocsPerOp > allocLimit {
			fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s-%d: %d allocs/op vs baseline %d\n",
				r.Name, r.Procs, r.AllocsPerOp, old.AllocsPerOp)
			regressions++
		}
		if strings.Contains(r.Name, "Serve") || strings.Contains(r.Name, "FlightRec") ||
			strings.Contains(r.Name, "LatencyObs") || strings.Contains(r.Name, "SweepPointReuse") {
			byteLimit := int64(float64(old.BytesPerOp) * (1 + maxPct/100))
			if r.BytesPerOp > byteLimit {
				fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s-%d: %d B/op vs baseline %d\n",
					r.Name, r.Procs, r.BytesPerOp, old.BytesPerOp)
				regressions++
			}
		}
		// Campaign throughput gates downward: points/sec below the
		// baseline by more than maxPct means warm forks or arena reuse
		// stopped paying.
		if old.PointsPerSec > 0 && r.PointsPerSec > 0 {
			floor := old.PointsPerSec * (1 - maxPct/100)
			if r.PointsPerSec < floor {
				fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s-%d: %.2f points/sec vs baseline %.2f (-%.1f%%, limit %.0f%%)\n",
					r.Name, r.Procs, r.PointsPerSec, old.PointsPerSec, 100*(1-r.PointsPerSec/old.PointsPerSec), maxPct)
				regressions++
			}
		}
	}
	return regressions, nil
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkNetworkCycle-8   233782   9793 ns/op   0 B/op   0 allocs/op
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 1
	// Split off the -<procs> suffix go test appends (absent at GOMAXPROCS=1).
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
			procs = p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters, Procs: procs}
	for i := 2; i+1 < len(fields); i += 2 {
		v := fields[i]
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp, _ = strconv.ParseFloat(v, 64)
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(v, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(v, 10, 64)
		case "points/sec":
			r.PointsPerSec, _ = strconv.ParseFloat(v, 64)
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	if strings.HasPrefix(name, "NetworkCycle") {
		r.CyclesPerSec = 1e9 / r.NsPerOp
	}
	return r, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
