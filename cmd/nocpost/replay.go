package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/telemetry/flightrec"
	"repro/internal/telemetry/health"
)

// replayer reconstructs exact simulation state at recorded cycles: rebuild
// the network from the dump's spec, restore the newest keyframe at or
// before the target, and re-execute the deterministic engine forward. The
// engine advances via the kernel directly (not network.Run) so nothing a
// straight-through run would not have done at that cycle — like the probe's
// end-of-run elapsed stamp — perturbs the state.
type replayer struct {
	dp   *flightrec.Dump
	spec core.SimSpec
	n    *network.Network
}

func newReplayer(dp *flightrec.Dump) (*replayer, error) {
	if len(dp.SpecJSON) == 0 {
		return nil, fmt.Errorf("dump carries no sim spec; state reconstruction unavailable")
	}
	spec, err := core.ParseSpec(dp.SpecJSON)
	if err != nil {
		return nil, err
	}
	return &replayer{dp: dp, spec: spec}, nil
}

// seek positions the network at exactly `cycle` completed cycles. Seeking
// forward reuses the current network; seeking backward restores again.
func (r *replayer) seek(cycle int64) error {
	if cycle < 0 {
		return fmt.Errorf("cannot seek to negative cycle %d", cycle)
	}
	if r.n == nil || int64(r.n.Kernel().Now()) > cycle {
		if err := r.restore(cycle); err != nil {
			return err
		}
	}
	if delta := cycle - int64(r.n.Kernel().Now()); delta > 0 {
		r.n.Kernel().Run(delta)
	}
	return nil
}

// restore rebuilds a fresh network and loads the newest keyframe at or
// before the target (or leaves it at cycle 0 when none qualifies).
func (r *replayer) restore(cycle int64) error {
	n, err := r.spec.Rebuild()
	if err != nil {
		return err
	}
	if kf := r.dp.KeyframeBefore(cycle); kf != nil {
		f, err := checkpoint.Parse(kf.Data)
		if err != nil {
			return fmt.Errorf("keyframe at cycle %d: %w", kf.Cycle, err)
		}
		if f.ConfigHash != r.dp.ConfigHash {
			return fmt.Errorf("keyframe at cycle %d has config hash %#x, dump has %#x",
				kf.Cycle, f.ConfigHash, r.dp.ConfigHash)
		}
		if err := n.RestoreCheckpoint(f); err != nil {
			return fmt.Errorf("restore keyframe at cycle %d: %w", kf.Cycle, err)
		}
	}
	r.n = n
	return nil
}

// baseCycle reports where a seek to `cycle` starts re-execution from.
func (r *replayer) baseCycle(cycle int64) int64 {
	if kf := r.dp.KeyframeBefore(cycle); kf != nil {
		return kf.Cycle
	}
	return 0
}

// minWaitAge mirrors the recorder's reporting threshold so replayed
// waiting sets match the dumped attribution sample exactly.
func minWaitAge() int64 {
	hc := health.New(health.Config{}).Config()
	min := hc.StarveAge
	if hc.DeadlockWindow < min {
		min = hc.DeadlockWindow
	}
	if min > 4 {
		min /= 2
	}
	return min
}

// --- state ------------------------------------------------------------------

func cmdState(args []string) error {
	fs := flag.NewFlagSet("state", flag.ExitOnError)
	cycle := fs.Int64("cycle", -1, "completed cycle to reconstruct (default: the trigger cycle)")
	out := fs.String("out", "", "write the reconstructed checkpoint image to this file")
	fs.Parse(args)
	dp, err := loadDumpArg(fs)
	if err != nil {
		return err
	}
	c := *cycle
	if c < 0 {
		c = dp.Cycle
	}
	rp, err := newReplayer(dp)
	if err != nil {
		return err
	}
	base := rp.baseCycle(c)
	if err := rp.seek(c); err != nil {
		return err
	}
	n := rp.n

	inFlight := n.LinksInFlight()
	bufOcc := n.Occupancy() - inFlight
	rec := n.Recorder()
	p := n.Probe()
	fmt.Printf("state at cycle %d (keyframe %d + %d replayed cycles)\n", c, base, c-base)
	fmt.Printf("  buffered flits    %d\n", bufOcc)
	fmt.Printf("  in-flight flits   %d\n", inFlight)
	fmt.Printf("  generated pkts    %d\n", rec.Generated)
	fmt.Printf("  delivered pkts    %d\n", rec.DeliveredPackets)
	fmt.Printf("  ejected flits     %d\n", p.TotalEjectedFlits())
	fmt.Printf("  rng draws         %d\n", n.Kernel().RNGDraws())

	// Exactness cross-check against the ring: the record at this cycle was
	// written by the original run at the same instant.
	if ring := dp.RecordAt(c); ring != nil {
		ok := uint32(bufOcc) == ring.BufOcc && uint32(inFlight) == ring.LinkInFlight
		word := "matches"
		if !ok {
			word = "MISMATCHES"
		}
		fmt.Printf("  ring cross-check  %s (recorded %d buffered / %d in flight)\n",
			word, ring.BufOcc, ring.LinkInFlight)
		if !ok {
			return fmt.Errorf("reconstructed state diverges from the recorded ring at cycle %d", c)
		}
	}

	if *out != "" {
		data, err := n.SaveCheckpoint(dp.ConfigHash, c)
		if err != nil {
			return fmt.Errorf("encode state: %w", err)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("  checkpoint image  %s (%d bytes)\n", *out, len(data))
	}
	return nil
}

// --- diff (per-link movers) -------------------------------------------------

// diffLinks replays to both endpoints and differences the per-link flit
// counters, naming the busiest movers of the interval.
func diffLinks(dp *flightrec.Dump, a, b int64, top int) error {
	rp, err := newReplayer(dp)
	if err != nil {
		return err
	}
	if err := rp.seek(a); err != nil {
		return err
	}
	base := map[int]int64{}
	for _, lp := range rp.n.Probe().Links {
		if lp != nil {
			base[lp.Index] = lp.Flits
		}
	}
	if err := rp.seek(b); err != nil {
		return err
	}
	var loads []health.LinkLoad
	for _, lp := range rp.n.Probe().Links {
		if lp == nil {
			continue
		}
		if d := lp.Flits - base[lp.Index]; d > 0 {
			loads = append(loads, health.LinkLoad{
				Index: lp.Index, From: lp.From, To: lp.To,
				Dir: lp.Dir.String(), Flits: d,
			})
		}
	}
	loads = sortedByFlits(loads)
	if len(loads) > top {
		loads = loads[:top]
	}
	if len(loads) == 0 {
		fmt.Println("  per-link: no link carried a flit in the interval")
		return nil
	}
	fmt.Printf("  busiest links over (%d, %d]:\n", a, b)
	for _, l := range loads {
		fmt.Printf("    L%-4d t%d -> t%d %-2s %6d flits\n", l.Index, l.From, l.To, l.Dir, l.Flits)
	}
	return nil
}

// --- waitgraph --------------------------------------------------------------

func cmdWaitgraph(args []string) error {
	fs := flag.NewFlagSet("waitgraph", flag.ExitOnError)
	cycle := fs.Int64("cycle", -1, "final observation cycle (default: the dumped sample's cycle)")
	every := fs.Int64("every", 0, "observation cadence in cycles (default: the dump's health cadence)")
	back := fs.Int64("back", 8, "how many observation intervals to render before the final cycle")
	age := fs.Int64("age", 0, "minimum head-of-line age to count a VC as waiting (default: the recorder's threshold)")
	fs.Parse(args)
	dp, err := loadDumpArg(fs)
	if err != nil {
		return err
	}
	c := *cycle
	if c < 0 {
		c = dp.Sample.Cycle
		if c == 0 {
			c = dp.LastCycle() - 1
		}
	}
	step := *every
	if step <= 0 {
		step = dp.Every
	}
	if step <= 0 {
		step = flightrec.DefaultEvery
	}
	minAge := *age
	if minAge <= 0 {
		minAge = minWaitAge()
	}
	start := c - *back*step
	if start < 0 {
		start = c % step
	}
	rp, err := newReplayer(dp)
	if err != nil {
		return err
	}

	fmt.Printf("waiting-VC graph from cycle %d to %d (every %d cycles, min age %d)\n", start, c, step, minAge)
	var waits []health.VCWait
	for obs := start; obs <= c; obs += step {
		// A live sample at cycle S reads state in-phase at kernel time S,
		// which equals the between-cycles state at S+1 completed cycles.
		if err := rp.seek(obs + 1); err != nil {
			return err
		}
		waits = rp.n.AppendWaitingVCs(obs, minAge, waits[:0])
		renderWaitSet(obs, waits)
		if obs+step > c && obs != c {
			obs = c - step // land exactly on the final cycle
		}
	}

	// When the final observation is the dumped sample, cross-check the
	// replayed waiting set against the recorded one.
	if c == dp.Sample.Cycle && len(dp.Sample.Waiting) > 0 {
		if waitsEqual(waits, dp.Sample.Waiting) {
			fmt.Println("replayed waiting set matches the dumped attribution sample")
		} else {
			fmt.Printf("replayed waiting set DIFFERS from the dumped sample (%d vs %d entries)\n",
				len(waits), len(dp.Sample.Waiting))
		}
	}
	return nil
}

func renderWaitSet(cycle int64, waits []health.VCWait) {
	if len(waits) == 0 {
		fmt.Printf("cycle %-8d no waiting VCs\n", cycle)
		return
	}
	fmt.Printf("cycle %-8d %d waiting VC(s)\n", cycle, len(waits))
	for _, w := range waits {
		switch {
		case w.Stuck:
			fmt.Printf("  %-14s age %-6d WEDGED (stuck by fault)\n", w.Label(), w.Age)
		case w.Stalled:
			fmt.Printf("  %-14s age %-6d WEDGED (port stalled)\n", w.Label(), w.Age)
		case w.Routed && w.DownTile >= 0:
			fmt.Printf("  %-14s age %-6d -> t%d:%v.vc%d\n", w.Label(), w.Age,
				w.DownTile, w.OutPort.Opposite(), w.OutVC)
		default:
			fmt.Printf("  %-14s age %-6d (unrouted)\n", w.Label(), w.Age)
		}
	}
	if cyc := health.WaitCycle(waits); len(cyc) > 0 {
		var sb strings.Builder
		for _, w := range cyc {
			sb.WriteString(w.Label())
			sb.WriteString(" -> ")
		}
		sb.WriteString(cyc[0].Label())
		fmt.Printf("  CYCLE CLOSED: %s\n", sb.String())
	}
}

func waitsEqual(a, b []health.VCWait) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- links ------------------------------------------------------------------

// sparkRunes renders relative intensity, lowest to highest.
var sparkRunes = []rune(" ▁▂▃▄▅▆▇█")

func cmdLinks(args []string) error {
	fs := flag.NewFlagSet("links", flag.ExitOnError)
	from := fs.Int64("from", -1, "older cycle (default: oldest recorded)")
	to := fs.Int64("to", -1, "newer cycle (default: newest recorded)")
	top := fs.Int("top", 8, "how many of the busiest links to render")
	buckets := fs.Int("buckets", 64, "timeline resolution in buckets")
	fs.Parse(args)
	dp, err := loadDumpArg(fs)
	if err != nil {
		return err
	}
	if len(dp.Records) == 0 {
		return fmt.Errorf("dump has an empty ring; nothing to render")
	}
	a, b := *from, *to
	if a < 0 {
		a = dp.FirstCycle()
	}
	if b < 0 {
		b = dp.LastCycle()
	}
	if a >= b {
		return fmt.Errorf("-from %d must be older than -to %d", a, b)
	}
	nb := *buckets
	if nb < 1 {
		nb = 1
	}
	if int64(nb) > b-a {
		nb = int(b - a)
	}

	// Aggregate lane straight from the ring: total link flits per bucket.
	agg := make([]int64, nb)
	for _, rec := range dp.Range(a+1, b) {
		agg[bucketOf(rec.Cycle, a, b, nb)] += int64(rec.LinkFlits)
	}
	fmt.Printf("link traffic, cycles %d..%d (%d buckets of ~%d cycles)\n", a, b, nb, (b-a)/int64(nb))
	fmt.Printf("  %-22s %s  total\n", "", strings.Repeat("-", nb))
	fmt.Printf("  %-22s %s %7d flits\n", "all links (ring)", sparkline(agg), sumOf(agg))

	// Per-link lanes need replay: step through the interval bucket by
	// bucket differencing the per-link cumulative counters.
	rp, err := newReplayer(dp)
	if err != nil {
		fmt.Printf("  (per-link lanes unavailable: %v)\n", err)
		return nil
	}
	if err := rp.seek(a); err != nil {
		return err
	}
	nLinks := len(rp.n.Probe().Links)
	prev := make([]int64, nLinks)
	series := make([][]int64, nLinks)
	for i := range series {
		series[i] = make([]int64, nb)
	}
	for _, lp := range rp.n.Probe().Links {
		if lp != nil {
			prev[lp.Index] = lp.Flits
		}
	}
	for bk := 0; bk < nb; bk++ {
		end := a + (b-a)*int64(bk+1)/int64(nb)
		if err := rp.seek(end); err != nil {
			return err
		}
		for _, lp := range rp.n.Probe().Links {
			if lp == nil {
				continue
			}
			series[lp.Index][bk] = lp.Flits - prev[lp.Index]
			prev[lp.Index] = lp.Flits
		}
	}
	type lane struct {
		idx   int
		total int64
	}
	lanes := make([]lane, 0, nLinks)
	for i := range series {
		if t := sumOf(series[i]); t > 0 {
			lanes = append(lanes, lane{i, t})
		}
	}
	sort.Slice(lanes, func(i, j int) bool {
		if lanes[i].total != lanes[j].total {
			return lanes[i].total > lanes[j].total
		}
		return lanes[i].idx < lanes[j].idx
	})
	if len(lanes) > *top {
		lanes = lanes[:*top]
	}
	for _, ln := range lanes {
		lp := rp.n.Probe().Links[ln.idx]
		label := fmt.Sprintf("L%d t%d->t%d %s", lp.Index, lp.From, lp.To, lp.Dir)
		fmt.Printf("  %-22s %s %7d flits\n", label, sparkline(series[ln.idx]), ln.total)
	}
	return nil
}

func bucketOf(cycle, a, b int64, nb int) int {
	i := int((cycle - a - 1) * int64(nb) / (b - a))
	if i < 0 {
		i = 0
	}
	if i >= nb {
		i = nb - 1
	}
	return i
}

func sumOf(v []int64) int64 {
	var t int64
	for _, x := range v {
		t += x
	}
	return t
}

func sparkline(v []int64) string {
	var max int64
	for _, x := range v {
		if x > max {
			max = x
		}
	}
	var sb strings.Builder
	for _, x := range v {
		if max == 0 {
			sb.WriteRune(sparkRunes[0])
			continue
		}
		i := int(x * int64(len(sparkRunes)-1) / max)
		sb.WriteRune(sparkRunes[i])
	}
	return sb.String()
}
