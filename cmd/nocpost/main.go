// Command nocpost is the post-mortem analysis tool for flight-recorder
// dumps (internal/telemetry/flightrec, written by nocsim/nocsweep/nocbench
// under -flightrec). A dump carries a ring of per-cycle event deltas,
// periodic full-state keyframes, the fault and health-transition logs, and
// the attribution sample the live detectors judged — everything needed to
// time-travel through the cycles leading up to a wedge, crash, or manual
// trigger without re-running the workload.
//
//	nocpost info       dump.frec              # what the dump contains
//	nocpost state      -cycle 2048 dump.frec  # reconstruct exact state there
//	nocpost diff       -from 1900 -to 2000 dump.frec
//	nocpost waitgraph  dump.frec              # watch the wait-for graph form
//	nocpost links      dump.frec              # per-link occupancy timelines
//	nocpost verdict    dump.frec              # root-cause attribution
//
// Reconstruction is exact, not approximate: the engine is deterministic,
// so restoring the newest keyframe at or before the target cycle and
// re-executing forward rebuilds the state a straight-through run would
// have had there, byte for byte.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/telemetry/flightrec"
	"repro/internal/telemetry/health"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "info":
		err = cmdInfo(args)
	case "state":
		err = cmdState(args)
	case "diff":
		err = cmdDiff(args)
	case "waitgraph":
		err = cmdWaitgraph(args)
	case "links":
		err = cmdLinks(args)
	case "verdict":
		err = cmdVerdict(args)
	case "help", "-h", "-help", "--help":
		usage(os.Stdout)
		return
	default:
		fmt.Fprintf(os.Stderr, "nocpost: unknown command %q\n\n", cmd)
		usage(os.Stderr)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nocpost:", err)
		os.Exit(1)
	}
}

func usage(w *os.File) {
	fmt.Fprint(w, `nocpost analyses flight-recorder dumps (*.frec)

usage: nocpost <command> [flags] <dump.frec>

commands:
  info       print the dump header, keyframes, fault and health logs
  state      reconstruct exact network state at a recorded cycle
             (-cycle N, -out file writes the checkpoint image)
  diff       event deltas between two recorded cycles (-from A -to B)
  waitgraph  render the waiting-VC wait-for graph as it forms
             (-cycle C, -every N, -age MIN)
  links      per-link traffic timelines across the window (-top N, -step S)
  verdict    recompute root-cause attribution and cross-check it against
             the live detectors' recorded judgment

run "nocpost <command> -h" for the command's flags.
`)
}

// loadDumpArg parses the trailing dump-path argument common to every
// command.
func loadDumpArg(fs *flag.FlagSet) (*flightrec.Dump, error) {
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("want exactly one dump file argument, got %d", fs.NArg())
	}
	return flightrec.LoadDump(fs.Arg(0))
}

// --- info -------------------------------------------------------------------

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	dp, err := loadDumpArg(fs)
	if err != nil {
		return err
	}

	fmt.Printf("dump        %s\n", fs.Arg(0))
	fmt.Printf("reason      %s (trigger cycle %d)\n", dp.Reason, dp.Cycle)
	fmt.Printf("config      hash %#x, kind %q\n", dp.ConfigHash, dp.SpecKind)
	if len(dp.SpecJSON) > 0 {
		fmt.Printf("spec        %s\n", dp.SpecJSON)
	} else {
		fmt.Printf("spec        (none; state reconstruction unavailable)\n")
	}
	fmt.Printf("ring        %d records, cycles %d..%d (capacity %d)\n",
		len(dp.Records), dp.FirstCycle(), dp.LastCycle(), dp.Window)
	fmt.Printf("cadence     health sample every %d cycles, keyframe every %d\n", dp.Every, dp.KfEvery)
	if dp.KeyframeErr != "" {
		fmt.Printf("keyframes   disabled: %s\n", dp.KeyframeErr)
	} else if len(dp.Keyframes) == 0 {
		fmt.Printf("keyframes   none retained (replay starts from a cycle-0 rebuild)\n")
	} else {
		for _, kf := range dp.Keyframes {
			fmt.Printf("keyframe    cycle %d (%d bytes)\n", kf.Cycle, len(kf.Data))
		}
	}
	if n := len(dp.Faults); n > 0 || dp.FaultDrops > 0 {
		fmt.Printf("faults      %d logged, %d dropped\n", n, dp.FaultDrops)
		for _, f := range dp.Faults {
			fmt.Printf("  cycle %-8d %s\n", f.Cycle, faultString(f))
		}
	}
	if n := len(dp.Health); n > 0 || dp.HealthDrops > 0 {
		fmt.Printf("health      %d transition(s), %d dropped\n", n, dp.HealthDrops)
		for _, ev := range dp.Health {
			fmt.Printf("  cycle %-8d %-11s %-9s %s\n", ev.Cycle, ev.Detector, healthWord(ev.Healthy), ev.Detail)
		}
	}
	if dp.Sample.Cycle > 0 || len(dp.Sample.Waiting) > 0 {
		fmt.Printf("sample      cycle %d: %d flits buffered, %d waiting VC(s), %d hot link(s), %d dead link(s)\n",
			dp.Sample.Cycle, dp.Sample.BufOcc, len(dp.Sample.Waiting), len(dp.Sample.HotLinks), dp.Sample.DeadLinks)
	}
	return nil
}

func faultString(f flightrec.FaultEvent) string {
	if f.Kind == 1 {
		return fmt.Sprintf("link %d declared dead by watchdog", f.A)
	}
	return fmt.Sprintf("injector fault kind=%d where=%d", f.A, f.B)
}

func healthWord(healthy bool) string {
	if healthy {
		return "healthy"
	}
	return "UNHEALTHY"
}

// --- diff -------------------------------------------------------------------

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	from := fs.Int64("from", -1, "older cycle (default: oldest recorded)")
	to := fs.Int64("to", -1, "newer cycle (default: newest recorded)")
	topLinks := fs.Int("links", 8, "per-link movers to show via replay (0 disables)")
	fs.Parse(args)
	dp, err := loadDumpArg(fs)
	if err != nil {
		return err
	}
	if len(dp.Records) == 0 {
		return fmt.Errorf("dump has an empty ring; nothing to diff")
	}
	a, b := *from, *to
	if a < 0 {
		a = dp.FirstCycle()
	}
	if b < 0 {
		b = dp.LastCycle()
	}
	if a >= b {
		return fmt.Errorf("-from %d must be older than -to %d", a, b)
	}
	if dp.RecordAt(a) == nil || dp.RecordAt(b) == nil {
		return fmt.Errorf("cycles %d..%d not fully inside the recorded window %d..%d",
			a, b, dp.FirstCycle(), dp.LastCycle())
	}

	// Sum the per-cycle deltas over (a, b]: the activity that turned the
	// state at cycle a into the state at cycle b.
	var sum flightrec.Record
	for _, rec := range dp.Range(a+1, b) {
		sum.Injected += rec.Injected
		sum.Ejected += rec.Ejected
		sum.Routed += rec.Routed
		sum.SwitchMoves += rec.SwitchMoves
		sum.BypassMoves += rec.BypassMoves
		sum.ArbLosses += rec.ArbLosses
		sum.CreditStalls += rec.CreditStalls
		sum.StageStalls += rec.StageStalls
		sum.LinkFlits += rec.LinkFlits
		sum.HeadFlits += rec.HeadFlits
		sum.Credits += rec.Credits
		sum.DeliveredFlits += rec.DeliveredFlits
		sum.DeliveredPackets += rec.DeliveredPackets
		sum.AbortedPackets += rec.AbortedPackets
		sum.Generated += rec.Generated
	}
	ra, rb := dp.RecordAt(a), dp.RecordAt(b)
	span := b - a
	fmt.Printf("diff        cycles %d -> %d (%d cycles)\n", a, b, span)
	row := func(name string, v uint32) {
		fmt.Printf("  %-18s %8d   (%.3f/cycle)\n", name, v, float64(v)/float64(span))
	}
	row("generated pkts", sum.Generated)
	row("injected flits", sum.Injected)
	row("routed", sum.Routed)
	row("switch moves", sum.SwitchMoves)
	row("bypass moves", sum.BypassMoves)
	row("link flits", sum.LinkFlits)
	row("credits", sum.Credits)
	row("ejected flits", sum.Ejected)
	row("delivered flits", sum.DeliveredFlits)
	row("delivered pkts", sum.DeliveredPackets)
	row("aborted pkts", sum.AbortedPackets)
	row("arb losses", sum.ArbLosses)
	row("credit stalls", sum.CreditStalls)
	row("stage stalls", sum.StageStalls)
	fmt.Printf("  %-18s %8d -> %d\n", "buffered flits", ra.BufOcc, rb.BufOcc)
	fmt.Printf("  %-18s %8d -> %d\n", "in-flight flits", ra.LinkInFlight, rb.LinkInFlight)
	if ra.DeadLinks != rb.DeadLinks || rb.DeadLinks > 0 {
		fmt.Printf("  %-18s %8d -> %d\n", "dead links", ra.DeadLinks, rb.DeadLinks)
	}
	for _, f := range dp.Faults {
		if f.Cycle > a && f.Cycle <= b {
			fmt.Printf("  fault at cycle %d: %s\n", f.Cycle, faultString(f))
		}
	}
	for _, ev := range dp.Health {
		if ev.Cycle > a && ev.Cycle <= b {
			fmt.Printf("  health at cycle %d: %s %s %s\n", ev.Cycle, ev.Detector, healthWord(ev.Healthy), ev.Detail)
		}
	}

	if *topLinks > 0 {
		if err := diffLinks(dp, a, b, *topLinks); err != nil {
			fmt.Printf("  (per-link diff unavailable: %v)\n", err)
		}
	}
	return nil
}

// --- verdict ----------------------------------------------------------------

func cmdVerdict(args []string) error {
	fs := flag.NewFlagSet("verdict", flag.ExitOnError)
	fs.Parse(args)
	dp, err := loadDumpArg(fs)
	if err != nil {
		return err
	}

	fmt.Printf("dump        %s\n", fs.Arg(0))
	fmt.Printf("reason      %s (trigger cycle %d)\n", dp.Reason, dp.Cycle)
	fmt.Printf("window      cycles %d..%d, health cadence %d\n", dp.FirstCycle(), dp.LastCycle(), dp.Every)

	if len(dp.Health) > 0 {
		fmt.Println("recorded transitions (live detectors):")
		for _, ev := range dp.Health {
			fmt.Printf("  cycle %-8d %-11s %-9s %s\n", ev.Cycle, ev.Detector, healthWord(ev.Healthy), ev.Detail)
		}
	} else {
		fmt.Println("recorded transitions: none (every detector stayed healthy)")
	}

	// Independent recomputation from the dumped attribution sample: the
	// same entry points the live deadlock detector uses, fed the material
	// it judged, must reproduce its detail string exactly.
	s := health.Sample{
		Cycle:            dp.Sample.Cycle,
		GeneratedPackets: dp.Sample.Generated,
		EjectedFlits:     dp.Sample.EjectedFlits,
		BufOcc:           dp.Sample.BufOcc,
		Waiting:          dp.Sample.Waiting,
		HotLinks:         dp.Sample.HotLinks,
		DeadLinks:        dp.Sample.DeadLinks,
	}
	fmt.Printf("post-mortem attribution (recomputed from the dumped sample at cycle %d):\n", s.Cycle)
	detail := health.DeadlockDetail(s)
	fmt.Printf("  no-progress analysis: %s\n", detail)
	if cyc := health.WaitCycle(s.Waiting); len(cyc) > 0 {
		var sb strings.Builder
		for _, w := range cyc {
			sb.WriteString(w.Label())
			sb.WriteString(" -> ")
		}
		sb.WriteString(cyc[0].Label())
		fmt.Printf("  wait-for cycle:       %s\n", sb.String())
	} else if len(s.Waiting) > 0 {
		fmt.Printf("  wait-for cycle:       none (chains end outside the waiting set)\n")
	}

	// Cross-check: replay a fresh monitor over the sample series
	// reconstructed from the ring. Its transitions must agree with the
	// recorded ones wherever the windows overlap.
	replayed := replayMonitor(dp)
	if len(replayed) > 0 {
		fmt.Printf("monitor replay over the ring (%d reconstructed samples):\n", countSamples(dp))
		for _, ev := range replayed {
			verdictMark := crossCheck(dp.Health, ev)
			fmt.Printf("  cycle %-8d %-11s %-9s %s%s\n", ev.Cycle, ev.Detector, healthWord(ev.Healthy), ev.Detail, verdictMark)
		}
	}

	// The bottom line: the highest-priority detector that is unhealthy at
	// the end of the record, with its freshest attribution.
	last := map[string]health.Event{}
	for _, ev := range dp.Health {
		last[ev.Detector] = ev
	}
	for _, det := range []string{health.DetectorDeadlock, health.DetectorStarvation, health.DetectorCongestion} {
		ev, ok := last[det]
		if !ok || ev.Healthy {
			continue
		}
		attribution := ev.Detail
		match := ""
		if det == health.DetectorDeadlock {
			if detail == ev.Detail {
				match = " [post-mortem recomputation matches the live attribution]"
			} else {
				match = " [post-mortem recomputation DIFFERS; see above]"
			}
		}
		fmt.Printf("root cause: %s at cycle %d — %s%s\n", det, ev.Cycle, attribution, match)
		return nil
	}
	fmt.Println("root cause: none — all detectors healthy at dump time")
	return nil
}

// replayMonitor reconstructs the live recorder's sample series from the
// ring (the monitor differences cumulative counters, so window-relative
// sums are equivalent) and folds it through a fresh monitor. The dumped
// attribution sample supplies the waiting set and hot links at its cycle;
// other samples carry counters only, which is all the detectors need
// until they fire.
func replayMonitor(dp *flightrec.Dump) []health.Event {
	if dp.Every <= 0 || len(dp.Records) == 0 {
		return nil
	}
	mon := health.New(health.Config{})
	var events []health.Event
	var ej, gen int64
	for i := range dp.Records {
		rec := &dp.Records[i]
		ej += int64(rec.Ejected)
		gen += int64(rec.Generated)
		// A record at ring cycle c was written in-phase at kernel time
		// c-1, the same instant a health sample at cycle c-1 reads its
		// counters.
		sc := rec.Cycle - 1
		if sc < 0 || sc%dp.Every != 0 {
			continue
		}
		s := health.Sample{
			Cycle:            sc,
			GeneratedPackets: gen,
			EjectedFlits:     ej,
			BufOcc:           int64(rec.BufOcc) + int64(rec.LinkInFlight),
			DeadLinks:        int(rec.DeadLinks),
		}
		if sc == dp.Sample.Cycle {
			s.Waiting = dp.Sample.Waiting
			s.HotLinks = dp.Sample.HotLinks
		}
		events = append(events, mon.Observe(s)...)
	}
	return events
}

func countSamples(dp *flightrec.Dump) int {
	n := 0
	for i := range dp.Records {
		if sc := dp.Records[i].Cycle - 1; sc >= 0 && sc%dp.Every == 0 {
			n++
		}
	}
	return n
}

// crossCheck annotates a replayed event with whether the live log recorded
// the same transition.
func crossCheck(recorded []health.Event, ev health.Event) string {
	for _, r := range recorded {
		if r.Cycle == ev.Cycle && r.Detector == ev.Detector && r.Healthy == ev.Healthy {
			if r.Detail == ev.Detail {
				return "   [matches recorded]"
			}
			return "   [recorded transition, detail differs]"
		}
	}
	return "   [not in recorded log]"
}

// sortedByFlits orders link loads hottest-first for display.
func sortedByFlits(loads []health.LinkLoad) []health.LinkLoad {
	out := append([]health.LinkLoad(nil), loads...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flits != out[j].Flits {
			return out[i].Flits > out[j].Flits
		}
		return out[i].Index < out[j].Index
	})
	return out
}
