package noc

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/flit"
	"repro/internal/link"
	"repro/internal/network"
	"repro/internal/route"
	"repro/internal/router"
	"repro/internal/telemetry"
	"repro/internal/telemetry/flightrec"
	"repro/internal/telemetry/latency"
	"repro/internal/telemetry/serve"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// One benchmark per experiment row in DESIGN.md. Each iteration regenerates
// the experiment's table in quick mode; run `go test -bench E3 -v` to see a
// single experiment, or cmd/nocbench for the full paper-vs-measured report.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := core.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run(true)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkE1Baseline(b *testing.B)         { benchExperiment(b, "E1") }
func BenchmarkE2Area(b *testing.B)             { benchExperiment(b, "E2") }
func BenchmarkE3Power(b *testing.B)            { benchExperiment(b, "E3") }
func BenchmarkE4LoadLatency(b *testing.B)      { benchExperiment(b, "E4") }
func BenchmarkE5FlowControl(b *testing.B)      { benchExperiment(b, "E5") }
func BenchmarkE6Circuits(b *testing.B)         { benchExperiment(b, "E6") }
func BenchmarkE7LogicalWire(b *testing.B)      { benchExperiment(b, "E7") }
func BenchmarkE8Reservation(b *testing.B)      { benchExperiment(b, "E8") }
func BenchmarkE9DutyFactor(b *testing.B)       { benchExperiment(b, "E9") }
func BenchmarkE10Partition(b *testing.B)       { benchExperiment(b, "E10") }
func BenchmarkE11Fault(b *testing.B)           { benchExperiment(b, "E11") }
func BenchmarkE12Bus(b *testing.B)             { benchExperiment(b, "E12") }
func BenchmarkE13Serdes(b *testing.B)          { benchExperiment(b, "E13") }
func BenchmarkE14Interface(b *testing.B)       { benchExperiment(b, "E14") }
func BenchmarkE15Registers(b *testing.B)       { benchExperiment(b, "E15") }
func BenchmarkE16TimingClosure(b *testing.B)   { benchExperiment(b, "E16") }
func BenchmarkE17Compaction(b *testing.B)      { benchExperiment(b, "E17") }
func BenchmarkE18TopologyScaling(b *testing.B) { benchExperiment(b, "E18") }
func BenchmarkE19Adaptive(b *testing.B)        { benchExperiment(b, "E19") }
func BenchmarkE20Chaos(b *testing.B)           { benchExperiment(b, "E20") }

// Simulator microbenchmarks: the cost of the cycle loop itself.

// BenchmarkNetworkCycle measures simulated cycles per second on the
// paper's 16-tile baseline under 30% uniform load.
func BenchmarkNetworkCycle(b *testing.B) {
	topo, err := topology.NewFoldedTorus(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	n, err := network.New(network.Config{Topo: topo, Router: router.DefaultConfig(0), Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for tile := 0; tile < topo.NumTiles(); tile++ {
		n.AttachClient(tile, traffic.NewGenerator(tile, traffic.Uniform{Tiles: 16}, 0.3, 2, flit.VCMask(0xFF), 1))
	}
	// Warm the flit pool and buffers so the loop measures the steady
	// state; allocs/op should then be ~0 (see TestCycleLoopAllocFree).
	n.Run(2000)
	b.ReportAllocs()
	b.ResetTimer()
	n.Run(int64(b.N))
}

// BenchmarkNetworkCycleProbesOff and BenchmarkNetworkCycleProbesOn bound
// the telemetry overhead: the Off/On pair runs the exact baseline loop
// with no probe vs. a counters-only probe attached, so their delta is the
// cost of the always-on hook sites plus the counter increments. Both fold
// into BENCH_cycles.json via `make bench`.
func BenchmarkNetworkCycleProbesOff(b *testing.B) { benchCycleProbes(b, nil) }

func BenchmarkNetworkCycleProbesOn(b *testing.B) {
	benchCycleProbes(b, telemetry.New(telemetry.Config{}))
}

func benchCycleProbes(b *testing.B, probe *telemetry.Probe) {
	b.Helper()
	topo, err := topology.NewFoldedTorus(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	n, err := network.New(network.Config{Topo: topo, Router: router.DefaultConfig(0), Seed: 1, Probe: probe})
	if err != nil {
		b.Fatal(err)
	}
	for tile := 0; tile < topo.NumTiles(); tile++ {
		n.AttachClient(tile, traffic.NewGenerator(tile, traffic.Uniform{Tiles: 16}, 0.3, 2, flit.VCMask(0xFF), 1))
	}
	n.Run(2000)
	b.ReportAllocs()
	b.ResetTimer()
	n.Run(int64(b.N))
}

// BenchmarkNetworkCycleServeOff and BenchmarkNetworkCycleServeOn bound
// the live observability overhead the same way the Probes pair bounds the
// counter fabric: the identical baseline loop with a telemetry probe, with
// and without the serve collector's snapshot phase attached. Off must stay
// on the 0 allocs/cycle fast path; On amortizes one snapshot allocation
// per sampling window. Both fold into BENCH_cycles.json via `make bench`.
func BenchmarkNetworkCycleServeOff(b *testing.B) { benchCycleServe(b, false) }

func BenchmarkNetworkCycleServeOn(b *testing.B) { benchCycleServe(b, true) }

func benchCycleServe(b *testing.B, serveOn bool) {
	b.Helper()
	topo, err := topology.NewFoldedTorus(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	n, err := network.New(network.Config{
		Topo: topo, Router: router.DefaultConfig(0), Seed: 1,
		Probe: telemetry.New(telemetry.Config{}),
	})
	if err != nil {
		b.Fatal(err)
	}
	for tile := 0; tile < topo.NumTiles(); tile++ {
		n.AttachClient(tile, traffic.NewGenerator(tile, traffic.Uniform{Tiles: 16}, 0.3, 2, flit.VCMask(0xFF), 1))
	}
	if serveOn {
		if _, err := serve.AttachCollector(n, serve.Config{Every: serve.DefaultEvery}); err != nil {
			b.Fatal(err)
		}
	}
	n.Run(2000)
	b.ReportAllocs()
	b.ResetTimer()
	n.Run(int64(b.N))
}

// BenchmarkNetworkCycleFlightRecOff and BenchmarkNetworkCycleFlightRecOn
// bound the flight-recorder overhead: the identical baseline loop with a
// telemetry probe, with and without the recorder's serial ring phase
// attached. Off must stay on the 0 allocs/cycle fast path; On appends one
// fixed-size delta record per cycle into the preallocated ring and takes a
// keyframe every Window/2 cycles, so its steady state is also
// allocation-free outside the keyframe cadence. Both fold into
// BENCH_cycles.json via `make bench`.
func BenchmarkNetworkCycleFlightRecOff(b *testing.B) { benchCycleFlightRec(b, false) }

func BenchmarkNetworkCycleFlightRecOn(b *testing.B) { benchCycleFlightRec(b, true) }

func benchCycleFlightRec(b *testing.B, recOn bool) {
	b.Helper()
	topo, err := topology.NewFoldedTorus(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	n, err := network.New(network.Config{
		Topo: topo, Router: router.DefaultConfig(0), Seed: 1,
		Probe: telemetry.New(telemetry.Config{}),
	})
	if err != nil {
		b.Fatal(err)
	}
	for tile := 0; tile < topo.NumTiles(); tile++ {
		n.AttachClient(tile, traffic.NewGenerator(tile, traffic.Uniform{Tiles: 16}, 0.3, 2, flit.VCMask(0xFF), 1))
	}
	if recOn {
		if _, err := flightrec.Attach(n, flightrec.Config{Dir: b.TempDir()}); err != nil {
			b.Fatal(err)
		}
	}
	n.Run(2000)
	b.ReportAllocs()
	b.ResetTimer()
	n.Run(int64(b.N))
}

// BenchmarkNetworkCycleLatencyObsOff and BenchmarkNetworkCycleLatencyObsOn
// bound the per-flow latency observatory's overhead: the identical baseline
// loop with and without the observatory (pair flows, one SLO) attached. Off
// must stay on the 0 allocs/cycle fast path — the delivery hook is a nil
// check when no observer is set. On classifies every delivered packet into
// its per-flow log2 histogram and runs the SLO burn tick every 256 cycles,
// all against preallocated state, so its steady state is allocation-free
// too. Both fold into BENCH_cycles.json via `make bench`.
func BenchmarkNetworkCycleLatencyObsOff(b *testing.B) { benchCycleLatencyObs(b, false) }

func BenchmarkNetworkCycleLatencyObsOn(b *testing.B) { benchCycleLatencyObs(b, true) }

func benchCycleLatencyObs(b *testing.B, obsOn bool) {
	b.Helper()
	topo, err := topology.NewFoldedTorus(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	n, err := network.New(network.Config{Topo: topo, Router: router.DefaultConfig(0), Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for tile := 0; tile < topo.NumTiles(); tile++ {
		n.AttachClient(tile, traffic.NewGenerator(tile, traffic.Uniform{Tiles: 16}, 0.3, 2, flit.VCMask(0xFF), 1))
	}
	if obsOn {
		if _, err := latency.Attach(n, latency.Config{Flows: latency.FlowPair, SLO: "p99<=200"}); err != nil {
			b.Fatal(err)
		}
	}
	n.Run(2000)
	b.ReportAllocs()
	b.ResetTimer()
	n.Run(int64(b.N))
}

// BenchmarkNetworkCycle4096 measures the cycle loop on a 64x64 (4096-tile)
// torus under a light 1% locality-bounded load — the regime the
// quiescence-gated scan is for: most routers and links are idle on any
// given cycle, so the per-cycle cost tracks the active worklists, not the
// tile count.
func BenchmarkNetworkCycle4096(b *testing.B) { benchCycle4096(b, false) }

// BenchmarkNetworkCycleIdle4096 is the same 4096-tile torus with traffic
// sources on only the first 64 tiles: the other 98% of the die is idle,
// and the gate asserting idle-region cost stays O(active routers) is
// TestIdleRegionCost.
func BenchmarkNetworkCycleIdle4096(b *testing.B) { benchCycle4096(b, true) }

func benchCycle4096(b *testing.B, idle bool) {
	b.Helper()
	n := build4096(b, idle)
	b.ReportAllocs()
	b.ResetTimer()
	n.Run(int64(b.N))
}

// localWindow picks a uniform destination within ±window tiles of the
// source in each torus dimension (wrapping, source excluded); rowOnly
// keeps the destination on the source's row. The 4096-tile benchmarks
// use it instead of Uniform: route words pack 2 bits per hop into a
// uint64 (32 hops max), and on a 64x64 torus a uniform destination can
// sit up to 64 minimal hops away — besides being unroutable,
// die-spanning random traffic is not the on-chip locality regime these
// benchmarks model.
type localWindow struct {
	k, window int
	rowOnly   bool
}

func (l localWindow) Name() string { return "local" }

func (l localWindow) Pick(src int, rng *rand.Rand) int {
	span := 2*l.window + 1
	for {
		dx := rng.Intn(span) - l.window
		dy := 0
		if !l.rowOnly {
			dy = rng.Intn(span) - l.window
		}
		if dx == 0 && dy == 0 {
			continue
		}
		x := (src%l.k + dx + l.k) % l.k
		y := (src/l.k + dy + l.k) % l.k
		return y*l.k + x
	}
}

func build4096(b testing.TB, idle bool) *network.Network {
	topo, err := topology.NewFoldedTorus(64, 64)
	if err != nil {
		b.Fatal(err)
	}
	n, err := network.New(network.Config{Topo: topo, Router: router.DefaultConfig(0), Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	gens := topo.NumTiles()
	pat := localWindow{k: 64, window: 8}
	if idle {
		// Sources (and, row-local, destinations) on the first row only:
		// the other 63 rows of the die stay completely idle, and every
		// delivery lands on a tile whose client drains it.
		gens = 64
		pat.rowOnly = true
	}
	gg := make([]*traffic.Generator, gens)
	for tile := 0; tile < gens; tile++ {
		gg[tile] = traffic.NewGenerator(tile, pat, 4*cycle4096Rate, 2, flit.VCMask(0xFF), 1)
		n.AttachClient(tile, gg[tile])
	}
	// Warm every pool's high-water mark past anything the measured load
	// can reach: run at 4x the benchmark rate first (more flits in
	// flight, deeper per-port delivery and reassembly bursts), then
	// settle at the real rate. Without the overdrive, rare record-setting
	// events — a new max of in-flight flits, a port's first triple
	// delivery — keep allocating at a slowly decaying rate for hundreds
	// of thousands of cycles, and short timing windows catch them.
	n.Run(2000)
	for _, g := range gg {
		g.Rate = cycle4096Rate
	}
	n.Run(2000)
	return n
}

// cycle4096Rate is the offered load of the 4096-tile benchmarks: light
// (1%) on purpose — the quiescence-gated regime.
const cycle4096Rate = 0.01

// BenchmarkNetworkCycle64 is the same loop on an 8x8 torus.
func BenchmarkNetworkCycle64(b *testing.B) { benchCycle64(b, 1) }

// BenchmarkNetworkCycle64Shards{2,4,8} run the identical 8x8 workload with
// the cycle loop sharded across the lockstep worker pool. The results are
// byte-identical to the sequential loop (see determinism_test.go); only
// the wall clock may differ. Speedup requires real cores: run with
// GOMAXPROCS >= the shard count (`make bench` records both GOMAXPROCS=1
// and GOMAXPROCS=8 rows). With fewer cores than shards the barriers make
// these strictly slower than the sequential loop — that cost is recorded,
// not hidden.
func BenchmarkNetworkCycle64Shards2(b *testing.B) { benchCycle64(b, 2) }
func BenchmarkNetworkCycle64Shards4(b *testing.B) { benchCycle64(b, 4) }
func BenchmarkNetworkCycle64Shards8(b *testing.B) { benchCycle64(b, 8) }

// The NoBatch variants run the identical sharded workload with epoch
// batching disabled (Config.BatchEpochs < 0), recording what the
// quiescence fast-forward is worth on top of plain sharding. The default
// rows above run with batching on (the default).
func BenchmarkNetworkCycle64Shards2NoBatch(b *testing.B) { benchCycle64NoBatch(b, 2) }
func BenchmarkNetworkCycle64Shards4NoBatch(b *testing.B) { benchCycle64NoBatch(b, 4) }
func BenchmarkNetworkCycle64Shards8NoBatch(b *testing.B) { benchCycle64NoBatch(b, 8) }

func benchCycle64(b *testing.B, shards int) { benchCycle64Batch(b, shards, 0) }

func benchCycle64NoBatch(b *testing.B, shards int) { benchCycle64Batch(b, shards, -1) }

func benchCycle64Batch(b *testing.B, shards, batch int) {
	b.Helper()
	topo, err := topology.NewFoldedTorus(8, 8)
	if err != nil {
		b.Fatal(err)
	}
	n, err := network.New(network.Config{Topo: topo, Router: router.DefaultConfig(0), Seed: 1, Shards: shards, BatchEpochs: batch})
	if err != nil {
		b.Fatal(err)
	}
	if n.Shards() != shards {
		b.Fatalf("network runs %d shards, want %d", n.Shards(), shards)
	}
	for tile := 0; tile < topo.NumTiles(); tile++ {
		n.AttachClient(tile, traffic.NewGenerator(tile, traffic.Uniform{Tiles: 64}, 0.3, 2, flit.VCMask(0xFF), 1))
	}
	n.Run(2000)
	b.ReportAllocs()
	b.ResetTimer()
	n.Run(int64(b.N))
}

// BenchmarkRouteCompute measures the source-route encoder (the paper's
// client-local destination-to-route translation).
func BenchmarkRouteCompute(b *testing.B) {
	topo, err := topology.NewFoldedTorus(8, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := i % 64
		dst := (i*31 + 17) % 64
		if dst == src {
			dst = (dst + 1) % 64
		}
		if _, err := route.Compute(topo, src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkECCRoundTrip measures SECDED encode+decode of a full 256-bit
// payload.
func BenchmarkECCRoundTrip(b *testing.B) {
	data := make([]byte, 32)
	for i := range data {
		data[i] = byte(i * 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := link.ECCEncode(data, 256)
		if _, res := w.Decode(); res != link.ECCClean {
			b.Fatal("unexpected ECC result")
		}
	}
}

// BenchmarkPacketSegmentation measures flit segmentation and reassembly of
// a 1 KiB payload.
func BenchmarkPacketSegmentation(b *testing.B) {
	payload := make([]byte, 1024)
	for i := 0; i < b.N; i++ {
		p := &flit.Packet{ID: uint64(i), Payload: payload}
		fl := p.Flits()
		if _, err := flit.Reassemble(fl); err != nil {
			b.Fatal(err)
		}
	}
}
