// Package noc is a cycle-accurate simulator and analytical model suite
// reproducing Dally & Towles, "Route Packets, Not Wires: On-Chip
// Interconnection Networks" (DAC 2001) — the paper that introduced the
// network-on-chip.
//
// The package is a facade over the internal implementation:
//
//   - the example network of §2: a 16-tile folded torus with 256-bit flits,
//     eight virtual channels, four flits of buffering per VC, 2-bit-per-hop
//     source routing, credit-based virtual-channel flow control, and cyclic
//     reservation registers for pre-scheduled traffic;
//   - the client interface of §2.1 (Port): a reliable-datagram injection and
//     delivery port with per-VC ready signals;
//   - the layered services of §2.2 (internal/protocol): logical wires,
//     memory read/write, flow-controlled streams, end-to-end retry;
//   - the analytical models of §2.4–§4.4: router area, mesh-vs-torus power,
//     low-swing signaling, wiring duty factor;
//   - the baselines the paper argues against: dedicated top-level wires and
//     a shared bus;
//   - the experiment suite E1–E19 (see DESIGN.md and EXPERIMENTS.md) that
//     regenerates every quantitative claim in the paper.
//
// A minimal use:
//
//	topo, _ := noc.NewFoldedTorus(4, 4)
//	n, _ := noc.NewNetwork(noc.NetworkConfig{Topo: topo, Router: noc.DefaultRouterConfig(0)})
//	n.AttachClient(5, noc.ClientFunc(func(now int64, p *noc.Port) {
//		for _, d := range p.Deliveries() {
//			fmt.Printf("got %q from tile %d\n", d.Payload, d.Src)
//		}
//	}))
//	n.Port(0).Send(5, []byte("hello"), noc.MaskFor(0), 0)
//	n.Run(100)
//
// See examples/ for runnable programs and cmd/nocbench for the experiment
// harness.
package noc
