package noc

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/telemetry/flightrec"
)

// The post-mortem suite gates the flight recorder's central promise:
// any recorded cycle is reconstructable EXACTLY — restore the newest
// keyframe at or before it, re-execute the deterministic engine forward,
// and the resulting state is byte-identical to a straight-through run —
// regardless of the shard count or epoch batching the original run used.

// recordedRun executes core.Run with a flight recorder attached and a dump
// requested near the end of the horizon, returning the parsed dump.
func recordedRun(t *testing.T, shards, batch int) *flightrec.Dump {
	t.Helper()
	dir := t.TempDir()
	p := core.DefaultRunParams()
	p.Rate = 0.3
	p.FlitsPerPacket = 2
	p.WarmupCycles = 0
	p.MeasureCycles = 2000
	p.Seed = 9
	p.Probe = telemetry.New(telemetry.Config{})
	p.Shards = shards
	p.BatchEpochs = batch

	hash := core.ConfigHash("run", p, "")
	spec, err := core.SpecForRun("run", p).JSON()
	if err != nil {
		t.Fatal(err)
	}
	var rec *flightrec.Recorder
	p.OnNetwork = func(n *network.Network) error {
		r, err := flightrec.Attach(n, flightrec.Config{
			Window: 512, Dir: dir,
			ConfigHash: hash, SpecJSON: spec, SpecKind: "run",
		})
		if err != nil {
			return err
		}
		rec = r
		n.Kernel().AddPhase("trigger", func(now sim.Cycle) {
			if now == 1700 {
				r.RequestDump("exactness")
			}
		})
		return nil
	}
	if _, err := core.Run(p); err != nil {
		t.Fatal(err)
	}
	dumps := rec.Dumps()
	if len(dumps) == 0 {
		t.Fatalf("no dump written (recorder err: %v)", rec.Err())
	}
	dp, err := flightrec.LoadDump(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	return dp
}

// reconstruct rebuilds the network from the dump's spec, restores the
// newest keyframe at or before cycle (or starts from the cycle-0 rebuild
// when none qualifies), replays forward, and returns the checkpoint image
// of the reconstructed state — the nocpost replay path, in-process.
func reconstruct(t *testing.T, dp *flightrec.Dump, cycle int64) []byte {
	t.Helper()
	spec, err := core.ParseSpec(dp.SpecJSON)
	if err != nil {
		t.Fatal(err)
	}
	n, err := spec.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	if kf := dp.KeyframeBefore(cycle); kf != nil {
		f, err := checkpoint.Parse(kf.Data)
		if err != nil {
			t.Fatalf("keyframe at %d: %v", kf.Cycle, err)
		}
		if f.ConfigHash != dp.ConfigHash {
			t.Fatalf("keyframe hash %#x, dump hash %#x", f.ConfigHash, dp.ConfigHash)
		}
		if err := n.RestoreCheckpoint(f); err != nil {
			t.Fatalf("restore keyframe at %d: %v", kf.Cycle, err)
		}
	}
	// Advance via the kernel, not network.Run: nothing a straight-through
	// run would not have done at this cycle may perturb the state.
	if delta := cycle - int64(n.Kernel().Now()); delta > 0 {
		n.Kernel().Run(delta)
	}
	img, err := n.SaveCheckpoint(dp.ConfigHash, cycle)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// straightThrough rebuilds from the spec and runs from cycle 0 with no
// keyframe involved — the reference the reconstruction must byte-match.
func straightThrough(t *testing.T, dp *flightrec.Dump, cycle int64) []byte {
	t.Helper()
	spec, err := core.ParseSpec(dp.SpecJSON)
	if err != nil {
		t.Fatal(err)
	}
	n, err := spec.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	n.Kernel().Run(cycle)
	img, err := n.SaveCheckpoint(dp.ConfigHash, cycle)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestFlightRecReconstructionExact is the acceptance gate: keyframe +
// delta replay byte-matches the straight-through state at several shard
// counts, with epoch batching on and off, at a keyframe-aligned cycle, an
// unaligned one, and one older than every retained keyframe (the
// rebuild-from-zero fallback).
func TestFlightRecReconstructionExact(t *testing.T) {
	if testing.Short() {
		t.Skip("replay exactness sweep is not -short")
	}
	for _, tc := range []struct {
		shards, batch int
	}{
		{1, 0}, {2, 0}, {3, 0}, {2, -1},
	} {
		t.Run(fmt.Sprintf("shards=%d,batch=%d", tc.shards, tc.batch), func(t *testing.T) {
			dp := recordedRun(t, tc.shards, tc.batch)
			if len(dp.Keyframes) == 0 {
				t.Fatalf("dump has no keyframes (err %q)", dp.KeyframeErr)
			}
			targets := []int64{
				dp.LastCycle() - 7,          // keyframe + partial replay
				dp.Keyframes[0].Cycle,       // keyframe-aligned: zero replayed cycles
				dp.Keyframes[0].Cycle - 100, // older than every keyframe: from-zero fallback
			}
			for _, c := range targets {
				if c < 0 {
					continue
				}
				got := reconstruct(t, dp, c)
				want := straightThrough(t, dp, c)
				if !bytes.Equal(got, want) {
					t.Errorf("cycle %d: reconstructed state (%d bytes) differs from straight-through (%d bytes)",
						c, len(got), len(want))
				}
			}
		})
	}
}

// TestFlightRecRingMatchesReplay cross-checks the ring against replay the
// way `nocpost state` does: the instantaneous occupancy the original run
// recorded at a cycle equals the occupancy of the reconstructed state.
func TestFlightRecRingMatchesReplay(t *testing.T) {
	dp := recordedRun(t, 2, 0)
	spec, err := core.ParseSpec(dp.SpecJSON)
	if err != nil {
		t.Fatal(err)
	}
	n, err := spec.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	kf := dp.KeyframeBefore(dp.LastCycle())
	if kf == nil {
		t.Fatal("no keyframe covers the newest record")
	}
	f, err := checkpoint.Parse(kf.Data)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.RestoreCheckpoint(f); err != nil {
		t.Fatal(err)
	}
	for c := kf.Cycle; c <= dp.LastCycle(); c += 13 {
		if delta := c - int64(n.Kernel().Now()); delta > 0 {
			n.Kernel().Run(delta)
		}
		rec := dp.RecordAt(c)
		if rec == nil {
			continue
		}
		inFlight := n.LinksInFlight()
		bufOcc := n.Occupancy() - inFlight
		if uint32(bufOcc) != rec.BufOcc || uint32(inFlight) != rec.LinkInFlight {
			t.Fatalf("cycle %d: replayed occupancy %d/%d, ring recorded %d/%d",
				c, bufOcc, inFlight, rec.BufOcc, rec.LinkInFlight)
		}
	}
}

// buildNocpost compiles cmd/nocpost into the test's temp dir.
func buildNocpost(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "nocpost")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/nocpost")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/nocpost: %v\n%s", err, out)
	}
	return bin
}

// TestFlightRecSmoke is the post-mortem smoke `make ci` runs: a real
// nocsim binary wedges itself under the deliberate-deadlock fault
// campaign with -flightrec on, the detector fire writes a dump with no
// operator involvement, and a real nocpost binary's verdict recomputes
// the same root cause and attribution the live detectors recorded.
func TestFlightRecSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test is not -short")
	}
	nocsim := buildNocsim(t)
	nocpost := buildNocpost(t)
	dir := t.TempDir()

	cmd := exec.Command(nocsim,
		"-mode", "vc", "-topo", "torus", "-k", "4",
		"-rate", "0.25", "-warmup", "0", "-measure", "6000", "-seed", "5",
		"-watchdog", "64",
		"-faults", "stall,tile=5,port=N,at=100;stall,tile=5,port=E,at=100;stall,tile=5,port=S,at=100;stall,tile=5,port=W,at=100",
		"-flightrec", "-flightrec-dir", dir,
	)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("nocsim campaign failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "flightrec: dump written to ") {
		t.Fatalf("nocsim never announced a dump:\n%s", out)
	}

	matches, err := filepath.Glob(filepath.Join(dir, "flightrec-*-detector-deadlock.frec"))
	if err != nil || len(matches) == 0 {
		entries, _ := os.ReadDir(dir)
		t.Fatalf("no detector-deadlock dump in %s (glob err %v, dir: %v)", dir, err, entries)
	}
	dump := matches[0]

	info, err := exec.Command(nocpost, "info", dump).CombinedOutput()
	if err != nil {
		t.Fatalf("nocpost info: %v\n%s", err, info)
	}
	for _, want := range []string{"detector-deadlock", "campaign", "link", "declared dead"} {
		if !strings.Contains(string(info), want) {
			t.Errorf("nocpost info lacks %q:\n%s", want, info)
		}
	}

	verdict, err := exec.Command(nocpost, "verdict", dump).CombinedOutput()
	if err != nil {
		t.Fatalf("nocpost verdict: %v\n%s", err, verdict)
	}
	vs := string(verdict)
	// The post-mortem monitor replay reproduces every recorded transition...
	if !strings.Contains(vs, "[matches recorded]") {
		t.Errorf("verdict's monitor replay does not match the recorded transitions:\n%s", vs)
	}
	if strings.Contains(vs, "[not in recorded log]") || strings.Contains(vs, "detail differs") {
		t.Errorf("verdict's monitor replay diverged from the live log:\n%s", vs)
	}
	// ...and the root cause names the same deadlock the live detector saw,
	// with a byte-identical recomputed attribution.
	if !strings.Contains(vs, "root cause: deadlock") {
		t.Errorf("verdict does not name deadlock as the root cause:\n%s", vs)
	}
	if !strings.Contains(vs, "[post-mortem recomputation matches the live attribution]") {
		t.Errorf("recomputed attribution does not match the live one:\n%s", vs)
	}
	if !strings.Contains(vs, "t5:") {
		t.Errorf("verdict does not attribute tile 5:\n%s", vs)
	}
}
