package noc

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/flit"
	"repro/internal/network"
	"repro/internal/router"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// buildLoadedNet returns the benchmark network: the 4x4 folded torus under
// 30% uniform Bernoulli load with 2-flit packets.
func buildLoadedNet(t testing.TB, stopAt int64, extra func(*network.Config)) *network.Network {
	t.Helper()
	topo, err := topology.NewFoldedTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := network.Config{Topo: topo, Router: router.DefaultConfig(0), Seed: 1}
	if extra != nil {
		extra(&cfg)
	}
	n, err := network.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for tile := 0; tile < topo.NumTiles(); tile++ {
		g := traffic.NewGenerator(tile, traffic.Uniform{Tiles: 16}, 0.3, 2, flit.VCMask(0xFF), 1)
		g.StopAt = stopAt
		n.AttachClient(tile, g)
	}
	return n
}

// TestCycleLoopAllocFree pins the tentpole property of the fast-path
// engine: after warmup, the five-phase cycle loop allocates (almost)
// nothing — flits come from the network's pool, credit and delivery
// slices are reused, and payloads live in per-generator scratch buffers.
// The seed engine allocated ~106 objects per cycle on this workload.
func TestCycleLoopAllocFree(t *testing.T) {
	n := buildLoadedNet(t, 0, nil)
	n.Run(2000) // warm the pool, buffers, and route cache
	const cyclesPerRun = 200
	allocs := testing.AllocsPerRun(5, func() {
		n.Run(cyclesPerRun)
	})
	perCycle := allocs / cyclesPerRun
	if perCycle > 1 {
		t.Fatalf("steady-state cycle loop allocates %.2f objects/cycle, want ~0", perCycle)
	}
}

// TestIdleRegionCost gates the quiescence-aware scan on the 4096-tile
// torus: with traffic sources on only 64 of 4096 tiles, a simulated
// cycle must cost a small fraction of the fully loaded cycle — the
// per-cycle sweeps walk the active-router and active-link worklists, so
// idle regions cost O(active routers), not O(tiles). The 25% bound is
// deliberately loose (the measured ratio is a few percent) so scheduler
// noise can't trip it; it fails only if a full-die scan comes back to
// the hot path.
func TestIdleRegionCost(t *testing.T) {
	if testing.Short() {
		t.Skip("idle-region cost gate is not -short")
	}
	busy := build4096(t, false)
	idle := build4096(t, true)
	busy.Run(2000)
	idle.Run(2000)
	const cycles = 2000
	best := func(n *network.Network) time.Duration {
		bestD := time.Duration(1 << 62)
		for i := 0; i < 3; i++ {
			start := time.Now()
			n.Run(cycles)
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	busyD := best(busy)
	idleD := best(idle)
	if ratio := float64(idleD) / float64(busyD); ratio > 0.25 {
		t.Fatalf("idle 4096-tile cycle costs %.0f%% of busy (idle %v vs busy %v per %d cycles); want <= 25%%: idle regions must cost O(active routers)",
			100*ratio, idleD, busyD, cycles)
	}
}

// TestDrainReturnsEveryFlit is the pool leak check: after a drain, every
// flit drawn from the network's pool has been recycled — whether it was
// delivered normally, dropped at a full buffer (drop mode), discarded on
// a dead link, swept toward a dead output, or synthesized as an abort
// tail.
func TestDrainReturnsEveryFlit(t *testing.T) {
	check := func(t *testing.T, n *network.Network) {
		t.Helper()
		if !n.Drain(100000) {
			t.Fatalf("network did not drain (occupancy %d)", n.Occupancy())
		}
		pool := n.FlitPool()
		if got := pool.Outstanding(); got != 0 {
			t.Fatalf("pool leak: %d of %d flits never recycled", got, pool.Gets())
		}
		if pool.Gets() == 0 {
			t.Fatal("pool was never used; leak check is vacuous")
		}
	}

	t.Run("normal-traffic", func(t *testing.T) {
		n := buildLoadedNet(t, 3000, nil)
		n.Run(3000)
		check(t, n)
	})

	t.Run("drop-mode", func(t *testing.T) {
		topo, err := topology.NewFoldedTorus(4, 4)
		if err != nil {
			t.Fatal(err)
		}
		rc := router.DefaultConfig(0)
		rc.Mode = router.ModeDrop
		rc.BufFlits = 1
		n, err := network.New(network.Config{Topo: topo, Router: rc, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		for tile := 0; tile < topo.NumTiles(); tile++ {
			// Single-flit packets at high load so drops actually happen.
			g := traffic.NewGenerator(tile, traffic.Uniform{Tiles: 16}, 0.6, 1, flit.VCMask(0xFF), 3)
			g.StopAt = 3000
			n.AttachClient(tile, g)
		}
		n.Run(3000)
		dropped := int64(0)
		for tile := 0; tile < topo.NumTiles(); tile++ {
			dropped += n.Router(tile).Stats.DroppedFlits
		}
		if dropped == 0 {
			t.Fatal("no drops occurred; drop-path leak check is vacuous")
		}
		check(t, n)
	})

	t.Run("link-kill-abort-tails", func(t *testing.T) {
		// A killed link exercises the fault recycle points: flits lost on
		// the dead wire, FaultSweep discards, and pool-drawn abort tails.
		n := buildLoadedNet(t, 4000, func(cfg *network.Config) {
			cfg.Watchdog = 64
			cfg.Seed = 7
		})
		inj, err := fault.NewInjector(n, []fault.Event{
			{Kind: fault.LinkKill, At: 500, Link: 9, From: -1, Tile: -1, VC: -1},
		}, 0, 4000, nil)
		if err != nil {
			t.Fatal(err)
		}
		inj.Attach()
		n.Run(4000)
		tot := n.FaultTotals()
		if len(tot.Detections) == 0 {
			t.Fatal("link kill was never detected; fault-path leak check is vacuous")
		}
		check(t, n)
	})
}

// TestOccupancyBookkeeping checks the O(1) occupancy mirror against a full
// recount of the router's buffers, including after faults have dropped
// and synthesized flits.
func TestOccupancyBookkeeping(t *testing.T) {
	n := buildLoadedNet(t, 0, func(cfg *network.Config) {
		cfg.Watchdog = 64
		cfg.Seed = 11
	})
	inj, err := fault.NewInjector(n, []fault.Event{
		{Kind: fault.LinkKill, At: 400, Link: 5, From: -1, Tile: -1, VC: -1},
	}, 0, 2500, nil)
	if err != nil {
		t.Fatal(err)
	}
	inj.Attach()
	for step := 0; step < 25; step++ {
		n.Run(100)
		for tile := 0; tile < n.Topology().NumTiles(); tile++ {
			r := n.Router(tile)
			if got, want := r.Occupancy(), r.OccupancyRecount(); got != want {
				t.Fatalf("cycle %d router %d: Occupancy()=%d, recount=%d", (step+1)*100, tile, got, want)
			}
		}
	}
}

// TestSweepParallelism pins the Level-1 contract: a sweep fanned across
// the worker pool produces byte-identical results to the sequential path,
// point for point.
func TestSweepParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep comparison")
	}
	base := core.DefaultRunParams()
	base.WarmupCycles, base.MeasureCycles = 300, 900
	base.FlitsPerPacket = 2
	rates := []float64{0.1, 0.25, 0.4, 0.55, 0.7}

	defer core.SetParallelism(0)
	core.SetParallelism(1)
	seq, err := core.Sweep(base, rates)
	if err != nil {
		t.Fatal(err)
	}
	core.SetParallelism(4)
	par, err := core.Sweep(base, rates)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("point counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		// DeepEqual rather than ==: RunParams carries a (nil here) OnNetwork
		// hook, which makes the struct non-comparable.
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Fatalf("rate %.2f: parallel result differs from sequential:\nseq: %+v\npar: %+v",
				rates[i], seq[i].Result, par[i].Result)
		}
	}
}

// TestSweepParallelSpeedup checks the headline Level-1 win: on a machine
// with at least 4 cores, a parallel sweep finishes at least 2x faster
// than the sequential one. Skipped on smaller machines (CI containers
// with 1-2 cores can't demonstrate the speedup).
func TestSweepParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock benchmark")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs to measure speedup, have %d", runtime.NumCPU())
	}
	base := core.DefaultRunParams()
	base.WarmupCycles, base.MeasureCycles = 500, 2500
	base.FlitsPerPacket = 2
	rates := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}

	defer core.SetParallelism(0)
	core.SetParallelism(1)
	t0 := time.Now()
	if _, err := core.Sweep(base, rates); err != nil {
		t.Fatal(err)
	}
	seq := time.Since(t0)
	core.SetParallelism(4)
	t0 = time.Now()
	if _, err := core.Sweep(base, rates); err != nil {
		t.Fatal(err)
	}
	par := time.Since(t0)
	if speedup := seq.Seconds() / par.Seconds(); speedup < 2 {
		t.Fatalf("parallel sweep speedup %.2fx (seq %v, par %v), want >= 2x on %d CPUs",
			speedup, seq, par, runtime.NumCPU())
	}
}
