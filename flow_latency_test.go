package noc

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/flit"
	"repro/internal/network"
	"repro/internal/router"
	"repro/internal/telemetry/latency"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// buildFlowNet is the reconciliation workload: the 16-tile baseline under
// 25% uniform load with a 100-cycle warmup, shards and epoch batching as
// requested, and the per-flow observatory attached.
func buildFlowNet(t *testing.T, shards, batch int, mode, slo string) (*network.Network, *latency.Observatory) {
	t.Helper()
	topo, err := topology.NewFoldedTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := network.New(network.Config{
		Topo: topo, Router: router.DefaultConfig(0), Seed: 11, Warmup: 100,
		Shards: shards, BatchEpochs: batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	for tile := 0; tile < topo.NumTiles(); tile++ {
		g := traffic.NewGenerator(tile, traffic.Uniform{Tiles: 16}, 0.25, 2, flit.VCMask(0xFF), 1)
		g.StopAt = 800
		n.AttachClient(tile, g)
	}
	o, err := latency.Attach(n, latency.Config{Flows: mode, SLO: slo})
	if err != nil {
		t.Fatal(err)
	}
	return n, o
}

// flowMatrix is the shard × batching cross product the per-flow suite
// runs: sequential, two shards, and the machine's width, each with epoch
// batching on (default) and off.
func flowMatrix() []struct{ shards, batch int } {
	counts := append([]int{1, 2}, shardCounts()...)
	seen := map[int]bool{}
	var m []struct{ shards, batch int }
	for _, s := range counts {
		if seen[s] {
			continue
		}
		seen[s] = true
		m = append(m, struct{ shards, batch int }{s, 0})  // batching default (on when sharded)
		m = append(m, struct{ shards, batch int }{s, -1}) // batching off
	}
	return m
}

// TestFlowLatencyReconciliation pins the observatory's accounting
// contract at every shard count and batching setting: the per-flow sums
// reconcile exactly with the run recorder's packet-latency histogram
// (same warmup gate, same loopback exclusion), and the full per-flow CSV
// is byte-identical to the sequential run's — the decomposition is not
// merely consistent, it is deterministic.
func TestFlowLatencyReconciliation(t *testing.T) {
	var want string
	for _, cfg := range flowMatrix() {
		cfg := cfg
		t.Run(fmt.Sprintf("shards%d_batch%d", cfg.shards, cfg.batch), func(t *testing.T) {
			n, o := buildFlowNet(t, cfg.shards, cfg.batch, latency.FlowPair, "p99<=40")
			n.Run(800)
			if !n.Drain(100000) {
				t.Fatalf("network did not drain (occupancy %d)", n.Occupancy())
			}
			rec := n.Recorder()
			count, sum := o.Totals()
			if count == 0 {
				t.Fatal("no packets observed; reconciliation is vacuous")
			}
			if count != rec.PacketLatency.Count() {
				t.Errorf("observatory count %d != recorder count %d", count, rec.PacketLatency.Count())
			}
			if sum != rec.PacketLatency.Sum() {
				t.Errorf("observatory latency sum %d != recorder sum %d", sum, rec.PacketLatency.Sum())
			}
			var csv strings.Builder
			if err := o.WriteCSV(&csv); err != nil {
				t.Fatal(err)
			}
			if want == "" {
				want = csv.String()
				if !strings.HasPrefix(want, "# flows\n") {
					t.Fatalf("CSV lacks the section header:\n%s", want[:80])
				}
			} else if got := csv.String(); got != want {
				t.Errorf("per-flow CSV diverged from the sequential run at shards=%d batch=%d",
					cfg.shards, cfg.batch)
			}
		})
	}
}

// TestFlowLatencyCheckpointRoundTrip interrupts the workload mid-run,
// restores the snapshot into a freshly built network with the
// observatory re-attached, and requires the resumed run's per-flow CSV —
// and a second full checkpoint — to byte-match the straight-through
// run's, across the same shard × batching matrix.
func TestFlowLatencyCheckpointRoundTrip(t *testing.T) {
	const hash = 77
	for _, cfg := range flowMatrix() {
		cfg := cfg
		t.Run(fmt.Sprintf("shards%d_batch%d", cfg.shards, cfg.batch), func(t *testing.T) {
			ref, refObs := buildFlowNet(t, cfg.shards, cfg.batch, latency.FlowPair, "p99<=40")
			ref.Run(400)
			snap, err := ref.SaveCheckpoint(hash, 400)
			if err != nil {
				t.Fatal(err)
			}
			ref.Run(400)
			wantSnap, err := ref.SaveCheckpoint(hash, 800)
			if err != nil {
				t.Fatal(err)
			}
			var wantCSV strings.Builder
			if err := refObs.WriteCSV(&wantCSV); err != nil {
				t.Fatal(err)
			}

			f, err := checkpoint.Parse(snap)
			if err != nil {
				t.Fatal(err)
			}
			res, resObs := buildFlowNet(t, cfg.shards, cfg.batch, latency.FlowPair, "p99<=40")
			if err := res.RestoreCheckpoint(f); err != nil {
				t.Fatal(err)
			}
			res.Run(400)
			gotSnap, err := res.SaveCheckpoint(hash, 800)
			if err != nil {
				t.Fatal(err)
			}
			if string(gotSnap) != string(wantSnap) {
				t.Errorf("resumed checkpoint bytes diverge from straight-through (%d vs %d bytes)",
					len(gotSnap), len(wantSnap))
			}
			var gotCSV strings.Builder
			if err := resObs.WriteCSV(&gotCSV); err != nil {
				t.Fatal(err)
			}
			if gotCSV.String() != wantCSV.String() {
				t.Errorf("resumed per-flow CSV diverged from straight-through:\n--- want ---\n%s--- got ---\n%s",
					wantCSV.String(), gotCSV.String())
			}
		})
	}
}

// TestFlowLatencyCheckpointConfigGuard requires a restore under a
// different observatory configuration to fail loudly instead of
// silently misaccounting.
func TestFlowLatencyCheckpointConfigGuard(t *testing.T) {
	n, _ := buildFlowNet(t, 1, 0, latency.FlowPair, "p99<=40")
	n.Run(300)
	snap, err := n.SaveCheckpoint(1, 300)
	if err != nil {
		t.Fatal(err)
	}
	f, err := checkpoint.Parse(snap)
	if err != nil {
		t.Fatal(err)
	}
	other, _ := buildFlowNet(t, 1, 0, latency.FlowSrcRow, "p99<=40")
	if err := other.RestoreCheckpoint(f); err == nil {
		t.Error("restore into a different flow mode succeeded")
	}
	f2, err := checkpoint.Parse(snap)
	if err != nil {
		t.Fatal(err)
	}
	diffSLO, _ := buildFlowNet(t, 1, 0, latency.FlowPair, "p50<=40")
	if err := diffSLO.RestoreCheckpoint(f2); err == nil {
		t.Error("restore under different objectives succeeded")
	}
}
