package noc

import (
	"bufio"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry/serve"
)

// The serve smoke test exercises the -serve flag end to end through a real
// nocsim binary: the command announces its ephemeral address on stderr,
// the /metrics endpoint speaks parseable Prometheus text while the run is
// still in flight, /healthz answers 200 on a healthy network, and a full
// run shuts the server down cleanly with exit status 0. `make ci` runs it
// as part of the race-detected suite.

// buildNocsim compiles cmd/nocsim into the test's temp dir.
func buildNocsim(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "nocsim")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/nocsim")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/nocsim: %v\n%s", err, out)
	}
	return bin
}

// serveAddr starts the binary with the given extra args plus
// -serve 127.0.0.1:0 and scans stderr for the announced address. The
// returned reader stays attached so the pipe never blocks the child.
func serveAddr(t *testing.T, cmd *exec.Cmd) string {
	t.Helper()
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	const marker = "serving live observability on http://"
	sc := bufio.NewScanner(stderr)
	deadline := time.Now().Add(30 * time.Second)
	for sc.Scan() {
		if line := sc.Text(); strings.Contains(line, marker) {
			addr := strings.TrimSpace(line[strings.Index(line, marker)+len(marker):])
			// Keep draining stderr so the child never blocks on the pipe.
			go func() {
				for sc.Scan() {
				}
			}()
			return addr
		}
		if time.Now().After(deadline) {
			break
		}
	}
	t.Fatalf("nocsim never announced its serve address (scan err: %v)", sc.Err())
	return ""
}

// getOK retries briefly so the scrape cannot race the first cycle-0 sample.
func getOK(t *testing.T, url string) *http.Response {
	t.Helper()
	var resp *http.Response
	var err error
	for i := 0; i < 100; i++ {
		resp, err = http.Get(url)
		if err == nil && resp.StatusCode == http.StatusOK {
			return resp
		}
		if err == nil {
			resp.Body.Close()
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("GET %s never returned 200 (last: resp=%v err=%v)", url, resp, err)
	return nil
}

func TestServeSmokeLiveScrape(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test is not -short")
	}
	bin := buildNocsim(t)

	// A run long enough that the server is guaranteed to still be up
	// while we scrape; the process is killed once the scrape passes.
	cmd := exec.Command(bin,
		"-serve", "127.0.0.1:0",
		"-k", "4", "-rate", "0.2", "-flits", "2",
		"-warmup", "100", "-measure", "100000000",
	)
	addr := serveAddr(t, cmd)
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	resp := getOK(t, "http://"+addr+"/metrics")
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type %q lacks the text exposition version", ct)
	}
	metrics, err := serve.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("/metrics does not parse as Prometheus text: %v", err)
	}
	byKey := map[string]float64{}
	for _, m := range metrics {
		byKey[m.Key()] = m.Value
	}
	if _, ok := byKey["noc_cycle"]; !ok {
		t.Error("scrape lacks noc_cycle")
	}
	if v, ok := byKey["noc_healthy"]; !ok || v != 1 {
		t.Errorf("noc_healthy = %v, %v; want 1 on a healthy run", v, ok)
	}

	hz := getOK(t, "http://"+addr+"/healthz")
	defer hz.Body.Close()
	body := make([]byte, 1<<16)
	n, _ := hz.Body.Read(body)
	if !strings.Contains(string(body[:n]), `"status"`) {
		t.Errorf("/healthz body lacks a status field: %s", body[:n])
	}
}

func TestServeSmokeCleanShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test is not -short")
	}
	bin := buildNocsim(t)

	// A complete short run: the server must come up, the run must finish,
	// and the process must exit 0 with the server closed cleanly.
	cmd := exec.Command(bin,
		"-serve", "127.0.0.1:0",
		"-k", "4", "-rate", "0.2",
		"-warmup", "100", "-measure", "1000",
	)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("nocsim -serve full run failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "serving live observability on http://") {
		t.Fatalf("full run never announced the serve address:\n%s", out)
	}
}

func TestServeSmokeFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test is not -short")
	}
	bin := buildNocsim(t)
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"metrics-out without metrics", []string{"-metrics-out", "m.csv"}, "-metrics-out requires -metrics"},
		{"tracefile-out without metrics", []string{"-tracefile-out", "t.json"}, "-tracefile-out requires -metrics"},
		{"negative metrics-every", []string{"-metrics", "-metrics-every", "-5"}, "-metrics-every must be >= 0"},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bin, tc.args...).CombinedOutput()
			if err == nil {
				t.Fatalf("nocsim %v exited 0; want validation failure", tc.args)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Fatalf("nocsim %v output lacks %q:\n%s", tc.args, tc.want, out)
			}
		})
	}
}
