// Quickstart: build the paper's 16-tile folded-torus network, send packets
// between tiles over the reliable-datagram port, and print what arrives.
package main

import (
	"fmt"
	"log"

	noc "repro"
)

func main() {
	// The §2 example network: 4x4 folded torus, 8 VCs x 4 flit buffers,
	// 256-bit flits, credit-based virtual-channel flow control.
	topo, err := noc.NewFoldedTorus(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	n, err := noc.NewNetwork(noc.NetworkConfig{
		Topo:   topo,
		Router: noc.DefaultRouterConfig(0),
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Attach a client to tile 5 that prints deliveries.
	n.AttachClient(5, noc.ClientFunc(func(now int64, p *noc.Port) {
		for _, d := range p.Deliveries() {
			fmt.Printf("cycle %3d: tile 5 received %q from tile %d (%d flits, latency %d cycles)\n",
				now, d.Payload, d.Src, d.Flits, d.Arrived-d.Birth)
		}
	}))

	// Send three packets from different tiles. The port segments payloads
	// into 256-bit flits, computes the 2-bit-per-hop source route, and
	// injects one flit per cycle, gated by the per-VC ready signal.
	sends := []struct {
		src     int
		payload string
	}{
		{0, "route packets"},
		{15, "not wires"},
		{10, "on-chip interconnection networks"},
	}
	for _, s := range sends {
		if _, err := n.Port(s.src).Send(5, []byte(s.payload), noc.MaskFor(0), 0); err != nil {
			log.Fatal(err)
		}
	}

	n.Run(50)

	rec := n.Recorder()
	fmt.Printf("\ndelivered %d/%d packets, mean latency %.1f cycles\n",
		rec.DeliveredPackets, rec.Generated, rec.PacketLatency.Mean())
}
