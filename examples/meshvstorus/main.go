// meshvstorus walks through the §3.1 topology trade-off: the folded torus
// doubles the mesh's wire demand and bisection bandwidth, costs a little
// more power per flit (under 15% with the real fold geometry), and
// sustains much higher throughput under uniform load.
package main

import (
	"fmt"
	"log"

	noc "repro"
	"repro/internal/core"
	"repro/internal/topology"
)

func main() {
	mesh, err := noc.NewMesh(8, 8)
	if err != nil {
		log.Fatal(err)
	}
	torus, err := noc.NewFoldedTorus(8, 8)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("static analysis (8x8):")
	ma, ta := topology.Analyze(mesh), topology.Analyze(torus)
	fmt.Printf("  %s\n  %s\n", ma, ta)
	fmt.Printf("  torus/mesh: wire demand %.1fx, bisection %.1fx, hops %.2fx\n\n",
		ta.WireDemand/ma.WireDemand,
		float64(ta.BisectionChannels)/float64(ma.BisectionChannels),
		ta.AvgHops/ma.AvgHops)

	model := core.PaperPowerModel()
	cmp, err := model.CompareExact(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-flit energy at the paper's 16-tile scale:\n  %s\n\n", cmp)

	fmt.Println("load-latency under uniform traffic (8x8, 4-flit packets):")
	fmt.Printf("  %-8s  %-22s  %-22s\n", "offered", "mesh lat/accepted", "torus lat/accepted")
	base := noc.DefaultRunParams()
	base.K = 8
	base.FlitsPerPacket = 4
	base.WarmupCycles, base.MeasureCycles = 500, 2000
	for _, rate := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		row := make(map[string]noc.RunResult)
		for _, topoName := range []string{"mesh", "torus"} {
			p := base
			p.Topology = topoName
			p.Rate = rate
			res, err := noc.Run(p)
			if err != nil {
				log.Fatal(err)
			}
			row[topoName] = res
		}
		fmt.Printf("  %-8.2f  %6.1f cyc / %.3f      %6.1f cyc / %.3f\n",
			rate,
			row["mesh"].AvgLatency, row["mesh"].AcceptedFlits,
			row["torus"].AvgLatency, row["torus"].AcceptedFlits)
	}
	fmt.Println("\nthe torus saturates well above the mesh — the doubled bisection the")
	fmt.Println("paper buys with its extra wire — while costing <15% more energy per flit.")
}
