// logicalwire demonstrates the §2.2 layering example: a bundle of eight
// wires on tile 0 behaves as if directly connected to tile 10. Client
// logic monitors the bundle; on any change it injects a single-flit packet
// whose 16-bit payload carries the wire state and the bundle identity, and
// the far end updates its outputs.
package main

import (
	"fmt"
	"log"

	noc "repro"
	"repro/internal/flit"
	"repro/internal/protocol"
	"repro/internal/traffic"
)

func main() {
	topo, err := noc.NewFoldedTorus(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	rc := noc.DefaultRouterConfig(0)
	rc.PriorityVCs = noc.MaskFor(7) // wire updates ride a priority class
	n, err := noc.NewNetwork(noc.NetworkConfig{Topo: topo, Router: rc, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	const src, dst = 0, 10
	sender := &protocol.WireSender{
		Bundle: protocol.WireBundle{ID: 7},
		Dst:    dst,
		Mask:   noc.MaskFor(7),
		Class:  9,
	}
	recv := protocol.NewWireReceiver()

	// Drive a walking-ones pattern onto the bundle, a new value every 40
	// cycles, while the rest of the chip generates background traffic.
	var driven []byte
	n.AttachClient(src, noc.ClientFunc(func(now int64, p *noc.Port) {
		if now%40 == 0 && now < 1600 {
			v := byte(1) << uint((now/40)%8)
			sender.Set(v, now)
			driven = append(driven, v)
		}
		sender.Tick(now, p)
	}))
	n.AttachClient(dst, recv)
	for tile := 0; tile < topo.NumTiles(); tile++ {
		if tile == src || tile == dst {
			continue
		}
		g := traffic.NewGenerator(tile, traffic.Uniform{Tiles: topo.NumTiles()}, 0.3, 4, flit.VCMask(0x77), 5)
		g.StopAt = 1600
		n.AttachClient(tile, g)
	}

	n.Run(2000)

	state, ok := recv.Output(7)
	fmt.Printf("drove %d values; receiver saw %d updates; final state %08b (ok=%v)\n",
		len(driven), recv.Updates, state, ok)
	fmt.Printf("change-to-update latency: p50 %d, p99 %d, max %d cycles (%.1f ns at 2 GHz)\n",
		recv.Latency.Median(), recv.Latency.P99(), recv.Latency.Max(),
		float64(recv.Latency.Median())*0.5)
	if state != driven[len(driven)-1] {
		log.Fatalf("final wire state %08b does not match last driven value %08b",
			state, driven[len(driven)-1])
	}
	fmt.Println("\nthe logical wires tracked the driven bundle across a loaded network,")
	fmt.Println("at a fixed small pipeline delay — the §2.2 'logical wire' service.")
}
