// faulttolerance demonstrates §2.5: a spare bit per link plus steering
// logic routes around a hard wire fault ("after test, laser fuses are
// blown ... to identify any faulty bits"), and end-to-end checking with
// retry masks transient faults.
package main

import (
	"bytes"
	"fmt"
	"log"

	noc "repro"
	"repro/internal/protocol"
)

func main() {
	// Part 1: hard fault + spare-bit steering.
	topo, err := noc.NewFoldedTorus(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	n, err := noc.NewNetwork(noc.NetworkConfig{
		Topo:   topo,
		Router: noc.DefaultRouterConfig(0),
		// Model the physical wires with one spare per link (§2.5).
		PhysWires:  true,
		SpareWires: 1,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Manufacturing test found a dead wire on every fourth link; blow the
	// fuses so the bit-steering logic shifts around it.
	faulty := 0
	for i, l := range n.Links() {
		if i%4 != 0 {
			continue
		}
		if err := l.Phys.InjectHardFault((i * 13) % 257); err != nil {
			log.Fatal(err)
		}
		if err := l.Phys.ProgramSteering(); err != nil {
			log.Fatal(err)
		}
		faulty++
	}
	fmt.Printf("injected a stuck-at-zero wire on %d of %d links and programmed steering\n",
		faulty, len(n.Links()))

	payload := []byte("this payload crosses steered links bit-for-bit intact")
	bad := 0
	n.AttachClient(9, noc.ClientFunc(func(now int64, p *noc.Port) {
		for _, d := range p.Deliveries() {
			if !bytes.Equal(d.Payload, payload) {
				bad++
			}
		}
	}))
	for src := 0; src < topo.NumTiles(); src++ {
		if src == 9 {
			continue
		}
		if _, err := n.Port(src).Send(9, payload, noc.MaskFor(0), 0); err != nil {
			log.Fatal(err)
		}
	}
	n.Run(400)
	fmt.Printf("delivered %d packets across faulty links, %d corrupted\n\n",
		n.Recorder().DeliveredPackets, bad)
	if bad != 0 {
		log.Fatal("steering failed to mask the hard faults")
	}

	// Part 2: transient faults + end-to-end retry (no link protection).
	n2, err := noc.NewNetwork(noc.NetworkConfig{
		Topo:          topo,
		Router:        noc.DefaultRouterConfig(0),
		PhysWires:     true,
		TransientProb: 0.03, // a bit flip every ~33 link traversals
		Seed:          2,
	})
	if err != nil {
		log.Fatal(err)
	}
	msgs := make([][]byte, 30)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("message %02d over a noisy network", i))
	}
	snd := protocol.NewReliableSender(13, msgs, noc.MaskFor(0))
	rcv := protocol.NewReliableReceiver(noc.MaskFor(1))
	n2.AttachClient(2, snd)
	n2.AttachClient(13, rcv)
	if !n2.Kernel().RunUntil(func() bool { return snd.Done() }, 200000) {
		log.Fatal("reliable transfer never completed")
	}
	for i, m := range msgs {
		if !bytes.Equal(rcv.Received[i], m) {
			log.Fatalf("message %d corrupted end to end", i)
		}
	}
	fmt.Printf("transferred %d messages over links flipping bits at 3%%/traversal:\n", len(msgs))
	fmt.Printf("  %d corrupted copies discarded by checksum, %d retransmissions, 0 corruptions delivered\n",
		rcv.Corrupted, snd.Retransmits)
	fmt.Println("\nhard faults are healed in the wires (spare-bit steering); transient")
	fmt.Println("faults are healed above the network (end-to-end check and retry).")
}
