// mpegstream reproduces the motivating workload of §2.6: "a flow of video
// data from a camera input to an MPEG encoder is entirely static and
// requires high-bandwidth with predictable delay. Such static traffic must
// share the network with dynamic traffic, such as processor memory
// references."
//
// A camera tile streams one flit every 8 cycles to an encoder tile over
// reservation-register slots; a processor tile hammers a memory tile with
// random reads and writes; every other tile adds random background load.
// The program reports that the reserved video stream keeps exactly zero
// delivery jitter while the dynamic memory traffic sees variable latency.
package main

import (
	"fmt"
	"log"

	noc "repro"
	"repro/internal/flit"
	"repro/internal/protocol"
	"repro/internal/traffic"
)

func main() {
	const (
		camera  = 0
		encoder = 10
		cpu     = 3
		memory  = 12
		period  = 8
		flow    = 1
		horizon = 8000
	)

	topo, err := noc.NewFoldedTorus(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	rc := noc.DefaultRouterConfig(0)
	rc.ReservedVC = 7 // the "special virtual channel" for static traffic
	rc.ResPeriod = period
	n, err := noc.NewNetwork(noc.NetworkConfig{Topo: topo, Router: rc, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// Lay out the static route and book a slot on every hop (§2.6: "when
	// the system is configured, routes are laid out for all of the static
	// traffic and reservations are made for each link of each route").
	hops, err := n.ReserveFlow(camera, encoder, flow, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reserved a %d-hop route from camera (tile %d) to encoder (tile %d), one slot per %d cycles\n",
		hops, camera, encoder, period)

	// Camera: one flit per period, on the reserved slots.
	cam := &traffic.StreamSource{
		Tile: camera, Dst: encoder, Period: period, Flow: flow,
		Reserved: true, StopAt: horizon - 500,
	}
	n.AttachClient(camera, cam)
	n.AttachClient(encoder, noc.ClientFunc(func(now int64, p *noc.Port) { p.Deliveries() }))

	// Processor and memory: unpredictable dynamic traffic.
	proc := protocol.NewProcessor(memory, flit.VCMask(0x77), 7)
	proc.StopAt = horizon - 500
	n.AttachClient(cpu, proc)
	n.AttachClient(memory, protocol.NewMemory(flit.VCMask(0x77)))

	// Background load on the remaining tiles.
	for tile := 0; tile < topo.NumTiles(); tile++ {
		switch tile {
		case camera, encoder, cpu, memory:
			continue
		}
		g := traffic.NewGenerator(tile, traffic.Uniform{Tiles: topo.NumTiles()}, 0.35, 4, flit.VCMask(0x77), 9)
		g.StopAt = horizon - 500
		n.AttachClient(tile, g)
	}

	n.Run(horizon)

	rec := n.Recorder()
	videoLat := rec.FlowLatency(flow)
	fmt.Printf("\nvideo stream:   %4d flits, latency %d cycles on every packet, jitter %d cycles\n",
		videoLat.Count(), videoLat.Median(), rec.FlowJitter(flow))
	ia := rec.FlowInterArrival(flow)
	fmt.Printf("                inter-arrival p50/max = %d/%d cycles (period %d)\n",
		ia.Median(), ia.Max(), period)
	fmt.Printf("memory traffic: %4d transactions, round-trip p50/p99/max = %d/%d/%d cycles\n",
		proc.Completed, proc.RTT.Median(), proc.RTT.P99(), proc.RTT.Max())
	if proc.Mismatches != 0 {
		log.Fatalf("memory consistency violated: %d mismatches", proc.Mismatches)
	}
	if j := rec.FlowJitter(flow); j != 0 {
		log.Fatalf("reserved video stream jittered by %d cycles", j)
	}
	fmt.Println("\nthe pre-scheduled stream crossed the loaded network with zero jitter;")
	fmt.Println("the dynamic memory references arbitrated for the remaining link cycles.")
}
