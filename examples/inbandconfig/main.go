// inbandconfig demonstrates §2.1's "internal network registers": a
// management tile programs the reservation registers of every router on a
// static flow's path by sending control packets over the network itself —
// no out-of-band configuration — and the flow then runs with zero jitter.
package main

import (
	"fmt"
	"log"

	noc "repro"
	"repro/internal/protocol"
	"repro/internal/traffic"
)

func main() {
	const (
		src, dst, mgmt = 0, 10, 15
		period, flow   = 8, 1
	)
	topo, err := noc.NewFoldedTorus(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	rc := noc.DefaultRouterConfig(0)
	rc.ReservedVC = 7
	rc.ResPeriod = period
	n, err := noc.NewNetwork(noc.NetworkConfig{Topo: topo, Router: rc, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}

	// The management tile plans the flow and will program it hop by hop.
	cfg, err := protocol.NewConfigurator(topo, src, dst, flow, 0, noc.MaskFor(0))
	if err != nil {
		log.Fatal(err)
	}
	n.AttachClient(mgmt, cfg)

	// Every other tile serves its router's register file; the source tile
	// additionally hosts the (not yet started) stream.
	stream := &traffic.StreamSource{
		Tile: src, Dst: dst, Period: period, Flow: flow, Reserved: true,
		Phase: 1 << 40,
	}
	for tile := 0; tile < topo.NumTiles(); tile++ {
		if tile == mgmt {
			continue
		}
		agent := &protocol.RegisterAgent{Router: n.Router(tile), Mask: noc.MaskFor(1)}
		if tile == src {
			n.AttachClient(tile, protocol.AgentWith(agent, stream))
		} else {
			n.AttachClient(tile, agent)
		}
	}

	if !n.Kernel().RunUntil(func() bool { return cfg.Done }, 10000) || cfg.Failed {
		log.Fatal("in-band configuration failed")
	}
	setup := n.Kernel().Now()
	fmt.Printf("programmed %d hops over the network in %d cycles (request + ack per hop)\n",
		cfg.Hops(), setup)

	// Start the stream on a slot-aligned cycle.
	start := ((setup / period) + 1) * period
	stream.Phase = start
	stream.StopAt = start + 4000
	n.Run(stream.StopAt + 100 - setup)

	rec := n.Recorder()
	lat := rec.FlowLatency(flow)
	fmt.Printf("stream: %d packets, latency %d cycles each, jitter %d cycles\n",
		lat.Count(), lat.Median(), rec.FlowJitter(flow))
	if rec.FlowJitter(flow) != 0 {
		log.Fatal("jitter nonzero")
	}
	fmt.Println("\nthe reservation registers were reached as network destinations (§2.1),")
	fmt.Println("and the flow was laid out 'by setting entries in the appropriate")
	fmt.Println("reservation register' (§2.6) — entirely in-band.")
}
