package noc_test

import (
	"fmt"

	noc "repro"
	"repro/internal/topology"
)

// Example sends a datagram across the paper's baseline network.
func Example() {
	topo, _ := noc.NewFoldedTorus(4, 4)
	n, _ := noc.NewNetwork(noc.NetworkConfig{
		Topo:   topo,
		Router: noc.DefaultRouterConfig(0),
		Seed:   1,
	})
	n.AttachClient(5, noc.ClientFunc(func(now int64, p *noc.Port) {
		for _, d := range p.Deliveries() {
			fmt.Printf("tile 5 got %q from tile %d in %d cycles\n",
				d.Payload, d.Src, d.Arrived-d.Birth)
		}
	}))
	if _, err := n.Port(0).Send(5, []byte("hello"), noc.MaskFor(0), 0); err != nil {
		fmt.Println(err)
		return
	}
	n.Run(20)
	// Output:
	// tile 5 got "hello" from tile 0 in 6 cycles
}

// ExampleNewFoldedTorus shows the physical fold of the paper's Figure 1:
// the ring in each row visits physical positions 0, 2, 3, 1.
func ExampleNewFoldedTorus() {
	fmt.Println(topology.FoldOrder(4))
	topo, _ := noc.NewFoldedTorus(4, 4)
	a := topology.Analyze(topo)
	fmt.Printf("channels=%d bisection=%d avg link=%.1f pitches\n",
		a.Channels, a.BisectionChannels, a.AvgLinkLength)
	// Output:
	// [0 2 3 1]
	// channels=64 bisection=16 avg link=1.5 pitches
}

// ExampleRun measures the baseline network under uniform random traffic.
func ExampleRun() {
	p := noc.DefaultRunParams()
	p.Rate = 0.1
	res, _ := noc.Run(p)
	fmt.Printf("accepted %.2f flits/node/cycle at offered %.2f\n",
		res.AcceptedFlits, res.OfferedFlits)
	// Output:
	// accepted 0.10 flits/node/cycle at offered 0.10
}

// ExampleExperimentByID regenerates one paper claim.
func ExampleExperimentByID() {
	e, _ := noc.ExperimentByID("E2")
	tbl, _ := e.Run(true)
	// The §2.4 area overhead row:
	for _, row := range tbl.Rows {
		if row[0] == "area overhead" {
			fmt.Printf("%s: paper %s, model %s\n", row[0], row[1], row[2])
		}
	}
	// Output:
	// area overhead: paper 6.6%, model 6.6%
}
