GO ?= go

.PHONY: all build test vet race ci fuzz bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The full race pass needs an explicit timeout: the root package's suite
# (goldens, determinism cross products, resumed and forked sweeps) runs
# well past go test's default 10m per-package budget under the race
# detector on small machines.
race:
	$(GO) test -race -timeout 30m ./...

# ci is the gate: everything compiles, vets clean, passes under the race
# detector (which includes the cross-shard determinism suite exercising
# the lockstep worker pool), and the hot-path benchmarks stay within 50%
# of the committed BENCH_cycles.json snapshot with no new allocations.
# The loose margin absorbs machine-to-machine noise on a short benchtime;
# `make bench` is the precise record. The telemetry layer, the live
# observability service (health detectors + HTTP endpoints), and their
# CLI glue are vetted and race-tested explicitly so a future build-tag or
# test-cache quirk can't silently drop them from the sweep, and the serve
# smoke test drives a real nocsim -serve binary end to end (ephemeral
# port announced on stderr, /metrics parses, /healthz 200, clean exit).
# The flight-recorder post-mortem smoke does the same for the black-box
# path: a real nocsim wedges itself under the deliberate-deadlock fault
# campaign with -flightrec on, the detector fire dumps the ring with no
# operator involvement, and a real nocpost binary's verdict must recompute
# the same root cause and attribution the live detectors recorded. The
# SLO burn smoke drives the same path for the per-flow observatory: a
# real nocsim saturates a hotspot under -flows/-slo, /healthz must burn
# with the offending flow, dominant stall cause, and path links named,
# the burn must leave a flight-recorder dump, and nocpost's verdict on
# that dump must replay the transition; the reconciliation and
# checkpoint suites hold the per-flow decomposition exact and
# byte-stable across shard counts, epoch batching, and resume.
# The benchjson gate covers the ServeOff/On pair so the serve-off loop
# keeps its zero-allocation fast path (bytes/op gates too on Serve rows),
# the FlightRecOff/On pair so a build without -flightrec keeps the
# 0 allocs/op hot path and the recorder itself stays ring-append cheap
# (FlightRec rows gate bytes/op too), the LatencyObsOff/On pair so a
# run without -flows keeps the 0 allocs/op hot path and the per-flow
# observatory's classify-and-histogram step stays allocation-free
# (LatencyObs rows gate bytes/op too), and the 4096-tile pair
# (NetworkCycle4096/NetworkCycleIdle4096) so the
# quiescence-gated big-die cycle loop keeps its speed and 0 allocs/op —
# each 4096 benchmark spends a few seconds building and warming the
# 64x64 torus before timing starts. The checkpoint/restore stack is
# gated twice: the resumed-golden suites replay the pinned experiments
# through a mid-run snapshot + rebuild + restore at several shard counts
# and must stay byte-identical to the straight-through goldens, and the
# crash-resume smoke SIGKILLs a real nocsim mid-campaign, tears the
# newest checkpoint file, and diffs the resumed run's report and metrics
# CSV against an uninterrupted reference. The campaign engine is gated
# the same two ways: the fork/replication determinism suite (forked
# sweeps byte-match the straight-through goldens, replica 0 byte-matches
# a plain run) runs under the race detector, and the campaign benchmarks
# ride the benchjson gate — SweepPointReuse must hold its 0 allocs/op
# (and 0 B/op) pooled re-init, NetworkBuild4096 records the cold-build
# cost it replaces, and the SweepThroughput pair gates points/sec
# downward so the warm-fork amortization can't silently rot.
ci:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) vet ./internal/telemetry ./internal/telemetry/health ./internal/telemetry/serve ./internal/telemetry/latency ./cmd/internal/obs
	$(GO) test -race ./internal/telemetry ./internal/telemetry/health ./internal/telemetry/serve ./internal/telemetry/latency ./cmd/internal/obs
	$(GO) test -race ./internal/checkpoint ./internal/network ./internal/core
	$(GO) test -race -timeout 30m ./...
	$(GO) test -race -run 'TestServeSmoke' .
	$(GO) test -race -run 'TestSLOBurnSmoke|TestSLOFlagValidation|TestFlowLatencyReconciliation|TestFlowLatencyCheckpointRoundTrip' .
	$(GO) test -race -run 'TestResumedGolden|TestCrashResume' .
	$(GO) test -race -run 'TestFlightRecSmoke|TestFlightRecReconstructionExact' .
	$(GO) test -race -run 'TestForkedGoldenSweep|TestReplicatedRunDeterminism|TestReplicatedSweepMatchesRuns|TestArenaReuseDeterminism' .
	{ $(GO) test -run '^$$' -bench 'NetworkCycle$$|NetworkCycleServeOff$$|NetworkCycleServeOn$$|NetworkCycleFlightRecOff$$|NetworkCycleFlightRecOn$$|NetworkCycleLatencyObsOff$$|NetworkCycleLatencyObsOn$$|NetworkCycle64$$|NetworkCycle4096$$|NetworkCycleIdle4096$$|RouteCompute' -benchtime 200ms -benchmem . ; \
	  $(GO) test -run '^$$' -bench 'NetworkBuild4096$$|SweepPointReuse$$' -benchtime 20x -benchmem . ; \
	  $(GO) test -run '^$$' -bench 'SweepThroughput' -benchtime 1x . ; } \
		| $(GO) run ./cmd/benchjson -against BENCH_cycles.json -max-regress 50

# fuzz gives the fault-campaign parser and the checkpoint decoder a short
# randomized budget each (go test accepts one -fuzz pattern per package
# invocation, hence two lines); the corpus seeds in the fuzz_test.go files
# always run under plain test.
fuzz:
	$(GO) test ./internal/fault -run='^$$' -fuzz=FuzzFaultPlan -fuzztime=10s
	$(GO) test ./internal/checkpoint -run='^$$' -fuzz=FuzzParse -fuzztime=10s

# bench is the regression harness: the cycle-loop microbenchmarks run
# long enough for stable ns/op and allocs/op, the E-suite benchmarks run
# once each, and cmd/benchjson folds everything into BENCH_cycles.json
# (simulated cycles/sec, allocs/op) for diffing across commits. The
# NetworkCycle pattern also matches NetworkCycleProbesOff/ProbesOn (the
# telemetry-overhead pair), NetworkCycleServeOff/ServeOn (the live
# observability snapshot-phase pair), NetworkCycleFlightRecOff/FlightRecOn
# (the flight-recorder ring-phase pair), the 64x64-die pair
# NetworkCycle4096/NetworkCycleIdle4096, and the NetworkCycle64Shards{2,4,8}
# lockstep worker-pool runs plus their NoBatch twins (epoch batching
# disabled, isolating the quiescence fast-forward win); the shard
# benchmarks are recorded at GOMAXPROCS=1 (barrier overhead, no speedup
# possible) and GOMAXPROCS=8 (the parallel case), keyed by the -procs
# suffix benchjson parses into each row. The campaign-engine rows record
# the amortized sweep machinery: NetworkBuild4096 (cold 4096-tile build),
# SweepPointReuse (pooled in-place Reset, must stay 0 allocs/op), and the
# SweepThroughput warm/cold pair whose points/sec ratio is the warm-fork
# amortization factor. The final step re-runs the
# 4096-tile benchmark under the CPU profiler so every refresh leaves a
# bench_cycle4096.prof artifact (`go tool pprof bench_cycle4096.prof`)
# beside the JSON for digging into cycle-loop regressions.
bench:
	{ GOMAXPROCS=1 $(GO) test -run '^$$' -bench 'NetworkCycle|RouteCompute|ECCRoundTrip|PacketSegmentation' -benchtime 1s -benchmem . ; \
	  GOMAXPROCS=8 $(GO) test -run '^$$' -bench 'NetworkCycle64' -benchtime 1s -benchmem . ; \
	  $(GO) test -run '^$$' -bench 'NetworkBuild4096$$|SweepPointReuse$$' -benchtime 50x -benchmem . ; \
	  $(GO) test -run '^$$' -bench 'SweepThroughput' -benchtime 1x . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkE[0-9]' -benchtime 1x -benchmem . ; } | $(GO) run ./cmd/benchjson -o BENCH_cycles.json
	GOMAXPROCS=1 $(GO) test -run '^$$' -bench 'NetworkCycle4096$$' -benchtime 200ms -cpuprofile bench_cycle4096.prof .

clean:
	$(GO) clean ./...
	rm -f bench_cycle4096.prof
