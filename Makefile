GO ?= go

.PHONY: all build test vet race ci fuzz bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# ci is the gate: everything compiles, vets clean, and passes under the
# race detector.
ci:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

# fuzz gives the fault-campaign parser a short randomized budget; the
# corpus seeds in internal/fault/fuzz_test.go always run under plain test.
fuzz:
	$(GO) test ./internal/fault -run='^$$' -fuzz=FuzzFaultPlan -fuzztime=10s

bench:
	$(GO) test -bench . -benchtime 1x .

clean:
	$(GO) clean ./...
